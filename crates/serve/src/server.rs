//! The daemon: accept loop, response cache, engine refresh, and
//! graceful drain.
//!
//! Concurrency model: one [`QueryEngine`] lives behind a swap lock as
//! an `Arc`. Each connection clones the `Arc` and answers from that
//! engine even if a background refresh swaps in a newer one mid-flight
//! — a campaign commit therefore becomes visible between requests,
//! never inside one, and no in-flight query is dropped. Shutdown
//! (SIGINT/SIGTERM or [`RunningServer::stop`]) closes the accept loop,
//! drains in-flight connections, and flushes a final telemetry
//! snapshot.

use crate::cache::LruCache;
use crate::engine::QueryEngine;
use crate::http::{parse_request_line, Response};
use crate::signal;
use parking_lot::{Mutex, RwLock};
use std::io::{self, Write as _};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::net::{TcpListener, TcpStream};

/// Requests larger than this are rejected outright; real queries are
/// one short GET line plus a handful of headers.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// How long a connection may take end-to-end before being dropped, so
/// a stalled client cannot wedge the drain phase.
const CONN_TIMEOUT: Duration = Duration::from_secs(5);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Store root: a bundle directory of campaigns or a single store.
    pub store: PathBuf,
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Response-cache capacity in entries; 0 disables caching.
    pub cache_cap: usize,
    /// Manifest re-check interval; 0 disables background refresh.
    pub refresh_ms: u64,
    /// Where to write the final telemetry snapshot on shutdown.
    pub metrics: Option<PathBuf>,
    /// Print the `listening on ...` line to stdout (daemon mode).
    pub announce: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            store: PathBuf::from("store"),
            addr: "127.0.0.1:0".to_string(),
            cache_cap: 256,
            refresh_ms: 1_000,
            metrics: None,
            announce: false,
        }
    }
}

/// What the daemon did, reported after shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections answered (including error responses).
    pub requests: u64,
    /// Engine swaps performed by the background refresh.
    pub refreshes: u64,
}

/// State shared between the accept loop, connection tasks, and the
/// controlling thread.
struct ServerState {
    engine: RwLock<Arc<QueryEngine>>,
    cache: Mutex<LruCache>,
    inflight: AtomicUsize,
    requests: AtomicU64,
    refreshes: AtomicU64,
    stop: AtomicBool,
}

impl ServerState {
    fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::triggered()
    }
}

/// Runs the daemon on the current thread until shutdown is requested,
/// then drains and returns the summary. This is what `repro serve`
/// calls.
pub fn run(opts: &ServeOptions) -> io::Result<ServeSummary> {
    let engine = QueryEngine::open(&opts.store)?;
    let state = Arc::new(ServerState {
        engine: RwLock::new(Arc::new(engine)),
        cache: Mutex::new(LruCache::new(opts.cache_cap)),
        inflight: AtomicUsize::new(0),
        requests: AtomicU64::new(0),
        refreshes: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    });
    let rt = tokio::runtime::Runtime::new()?;
    let opts = opts.clone();
    rt.block_on(async move {
        let listener = TcpListener::bind(opts.addr.as_str()).await?;
        let addr = listener.local_addr()?;
        if opts.announce {
            println!("listening on http://{addr}");
            io::stdout().flush()?;
        }
        serve_loop(state, listener, &opts).await
    })
}

/// A daemon started on a background thread, for `--selftest`, benches,
/// and integration tests.
pub struct RunningServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: Option<std::thread::JoinHandle<io::Result<ServeSummary>>>,
}

impl RunningServer {
    /// Opens the store (errors surface here, synchronously), then
    /// starts the accept loop on a background thread and waits for the
    /// bound address.
    pub fn start(opts: &ServeOptions) -> io::Result<RunningServer> {
        let engine = QueryEngine::open(&opts.store)?;
        let state = Arc::new(ServerState {
            engine: RwLock::new(Arc::new(engine)),
            cache: Mutex::new(LruCache::new(opts.cache_cap)),
            inflight: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let (tx, rx) = std::sync::mpsc::channel::<io::Result<SocketAddr>>();
        let thread_state = Arc::clone(&state);
        let opts = opts.clone();
        let thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || {
                let rt = tokio::runtime::Runtime::new()?;
                rt.block_on(async move {
                    let listener = match TcpListener::bind(opts.addr.as_str()).await {
                        Ok(l) => l,
                        Err(e) => {
                            let kind = e.kind();
                            let _ = tx.send(Err(e));
                            return Err(io::Error::new(kind, "bind failed"));
                        }
                    };
                    let _ = tx.send(listener.local_addr());
                    serve_loop(thread_state, listener, &opts).await
                })
            })?;
        let addr = rx
            .recv()
            .map_err(|_| io::Error::other("server thread died at startup"))??;
        Ok(RunningServer {
            addr,
            state,
            thread: Some(thread),
        })
    }

    /// The address the daemon actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown, waits for the drain, and returns the
    /// summary.
    pub fn stop(mut self) -> io::Result<ServeSummary> {
        self.state.stop.store(true, Ordering::SeqCst);
        let thread = self.thread.take().expect("stop called once");
        thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        // Stop the background thread even if `stop()` was never
        // called (e.g. a test panicked).
        if let Some(thread) = self.thread.take() {
            self.state.stop.store(true, Ordering::SeqCst);
            let _ = thread.join();
        }
    }
}

/// Accepts connections until shutdown, refreshing the engine on a
/// timer, then drains and flushes metrics.
async fn serve_loop(
    state: Arc<ServerState>,
    listener: TcpListener,
    opts: &ServeOptions,
) -> io::Result<ServeSummary> {
    let mut last_refresh = Instant::now();
    loop {
        // Checked at the top of every iteration, not in the timer
        // branch: under sustained load the accept branch wins every
        // select, and a sleep future recreated per iteration would
        // never reach its deadline.
        if state.stop_requested() {
            break;
        }
        if opts.refresh_ms > 0 && last_refresh.elapsed() >= Duration::from_millis(opts.refresh_ms) {
            last_refresh = Instant::now();
            refresh_engine(&state);
        }
        tokio::select! {
            accepted = listener.accept() => {
                if let Ok((stream, _peer)) = accepted {
                    state.inflight.fetch_add(1, Ordering::SeqCst);
                    let conn_state = Arc::clone(&state);
                    tokio::spawn(async move {
                        let _ = tokio::time::timeout(
                            CONN_TIMEOUT,
                            handle_connection(Arc::clone(&conn_state), stream),
                        )
                        .await;
                        conn_state.inflight.fetch_sub(1, Ordering::SeqCst);
                    });
                }
            },
            _ = tokio::time::sleep(Duration::from_millis(25)) => {},
        }
    }

    // Drain: stop accepting, keep driving in-flight connection tasks.
    while state.inflight.load(Ordering::SeqCst) > 0 {
        tokio::time::sleep(Duration::from_millis(1)).await;
    }
    let summary = ServeSummary {
        requests: state.requests.load(Ordering::SeqCst),
        refreshes: state.refreshes.load(Ordering::SeqCst),
    };
    telemetry::gauge("serve.shutdown.requests").set(summary.requests as f64);
    if let Some(path) = &opts.metrics {
        std::fs::write(path, telemetry::snapshot().to_json())?;
    }
    Ok(summary)
}

/// Re-reads manifests; on change, swaps the engine `Arc` and clears
/// the cache. In-flight tasks keep their old `Arc` until they finish.
fn refresh_engine(state: &ServerState) {
    let current = state.engine.read().clone();
    match current.refresh() {
        Ok((_, false)) => {}
        Ok((next, true)) => {
            *state.engine.write() = Arc::new(next);
            state.cache.lock().clear();
            state.refreshes.fetch_add(1, Ordering::SeqCst);
            telemetry::counter("serve.engine.swaps").inc();
        }
        Err(e) => {
            // Keep serving the last good generation; the writer may be
            // mid-commit.
            telemetry::counter("serve.engine.refresh_errors").inc();
            eprintln!("serve: refresh failed (serving previous generation): {e}");
        }
    }
}

/// Reads one request, answers it (through the cache), and closes.
async fn handle_connection(state: Arc<ServerState>, mut stream: TcpStream) {
    let Some(head) = read_head(&mut stream).await else {
        return;
    };
    state.requests.fetch_add(1, Ordering::SeqCst);
    let wire = match parse_request_line(&head) {
        Some(("GET", target)) => answer(&state, target),
        Some((_method, _)) => Arc::new(Response::error(405, "only GET is supported").to_wire()),
        None => Arc::new(Response::error(400, "malformed request line").to_wire()),
    };
    let _ = stream.write_all(&wire).await;
    let _ = stream.shutdown_write();
}

/// Computes (or recalls) the wire bytes for one request target.
fn answer(state: &ServerState, target: &str) -> Arc<Vec<u8>> {
    // Clone the Arc once: this request is now pinned to one engine
    // generation no matter what the refresh timer does.
    let engine = state.engine.read().clone();
    let key = format!("{}|{target}", engine.generation_tag());
    if let Some(hit) = state.cache.lock().get(&key) {
        return hit;
    }
    let response = engine.handle(target);
    let wire = Arc::new(response.to_wire());
    if response.cacheable {
        state.cache.lock().put(key, Arc::clone(&wire));
    }
    wire
}

/// Reads until the end of the request head (`\r\n\r\n`). Returns
/// `None` on early EOF or an oversized head.
async fn read_head(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf).await.ok()?;
        if n == 0 {
            return None;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            return String::from_utf8(head).ok();
        }
        if head.len() > MAX_HEAD_BYTES {
            return None;
        }
    }
}
