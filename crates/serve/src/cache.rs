//! A small LRU cache for hot response bodies.
//!
//! Keys embed the engine's generation tag, so entries cached against
//! an older store generation simply stop being asked for after a
//! refresh (the server also clears the cache on swap, keeping the map
//! from accumulating dead generations). Hits and misses are counted
//! under `serve.cache.hit` / `serve.cache.miss`.

use std::collections::HashMap;
use std::sync::Arc;

/// Least-recently-used response cache. Not thread-safe by itself; the
/// server wraps it in a mutex.
#[derive(Debug)]
pub struct LruCache {
    cap: usize,
    tick: u64,
    map: HashMap<String, (u64, Arc<Vec<u8>>)>,
}

impl LruCache {
    /// A cache holding at most `cap` bodies. `cap == 0` disables
    /// caching entirely (every lookup misses).
    pub fn new(cap: usize) -> LruCache {
        LruCache {
            cap,
            tick: 0,
            map: HashMap::with_capacity(cap.min(1024)),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((stamp, body)) => {
                *stamp = self.tick;
                telemetry::counter("serve.cache.hit").inc();
                Some(Arc::clone(body))
            }
            None => {
                telemetry::counter("serve.cache.miss").inc();
                None
            }
        }
    }

    /// Inserts `key`, evicting the least-recently-used entry when
    /// full. The linear eviction scan is fine at the cache sizes the
    /// daemon runs with (hundreds of entries).
    pub fn put(&mut self, key: String, body: Arc<Vec<u8>>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                telemetry::counter("serve.cache.evict").inc();
            }
        }
        self.map.insert(key, (self.tick, body));
    }

    /// Drops every entry (called when a refresh swaps the engine).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of cached bodies.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<Vec<u8>> {
        Arc::new(s.as_bytes().to_vec())
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut cache = LruCache::new(2);
        assert!(cache.get("a").is_none());
        cache.put("a".into(), body("A"));
        cache.put("b".into(), body("B"));
        assert_eq!(*cache.get("a").unwrap(), b"A".to_vec());
        // `b` is now the least recently used entry: inserting `c`
        // evicts it, not `a`.
        cache.put("c".into(), body("C"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.put("a".into(), body("A"));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_empties_the_map() {
        let mut cache = LruCache::new(4);
        cache.put("a".into(), body("A"));
        cache.clear();
        assert!(cache.get("a").is_none());
    }
}
