//! Minimal HTTP/1.1 plumbing for the query service.
//!
//! The daemon speaks just enough HTTP for curl, browsers, and the
//! synthetic fleet: `GET` requests, `Connection: close`, explicit
//! `Content-Length`, JSON bodies. Responses carry no wall-clock
//! headers, so a response is a pure function of (store, request).

/// A computed response, before serialization to the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 400, 404, 405).
    pub status: u16,
    /// JSON body, newline-terminated.
    pub body: Vec<u8>,
    /// Whether the body may be stored in the response cache.
    pub cacheable: bool,
}

impl Response {
    /// A cacheable 200 with a JSON body.
    pub fn ok(body: String) -> Response {
        Response {
            status: 200,
            body: body.into_bytes(),
            cacheable: true,
        }
    }

    /// An error response with a one-field JSON body.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":\"");
        escape_json(message, &mut body);
        body.push_str("\"}\n");
        Response {
            status,
            body: body.into_bytes(),
            cacheable: false,
        }
    }

    /// Serializes status line + headers + body.
    pub fn to_wire(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Error",
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            self.body.len()
        );
        let mut wire = head.into_bytes();
        wire.extend_from_slice(&self.body);
        wire
    }
}

/// Parses the request line of an HTTP request head, returning
/// `(method, target)`.
pub fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    Some((method, target))
}

/// Splits a request target into `(path, query pairs)`. No percent
/// decoding: every value this API accepts is plain ASCII.
pub fn split_target(target: &str) -> (&str, Vec<(&str, &str)>) {
    match target.split_once('?') {
        None => (target, Vec::new()),
        Some((path, query)) => {
            let params = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| p.split_once('=').unwrap_or((p, "")))
                .collect();
            (path, params)
        }
    }
}

/// Escapes `s` into `out` as JSON string contents (no quotes added).
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_and_target() {
        let (m, t) =
            parse_request_line("GET /classify?ip=1.2.3.4 HTTP/1.1\r\nHost: x\r\n").unwrap();
        assert_eq!((m, t), ("GET", "/classify?ip=1.2.3.4"));
        let (path, params) = split_target(t);
        assert_eq!(path, "/classify");
        assert_eq!(params, vec![("ip", "1.2.3.4")]);
        let (path, params) = split_target("/campaigns");
        assert_eq!(path, "/campaigns");
        assert!(params.is_empty());
    }

    #[test]
    fn wire_format_is_deterministic() {
        let r = Response::ok("{\"ok\":true}\n".to_string());
        let wire = String::from_utf8(r.to_wire()).unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(wire.contains("Content-Length: 12\r\n"));
        assert!(wire.ends_with("{\"ok\":true}\n"));
        assert!(!wire.contains("Date:"), "no wall-clock headers");
    }

    #[test]
    fn escaping() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
