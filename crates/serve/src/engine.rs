//! The query engine: an immutable set of [`StoreView`]s answering the
//! four query families.
//!
//! An engine is built once per store generation and shared behind an
//! `Arc`: request handlers clone the `Arc`, so a refresh that swaps in
//! a newer engine never invalidates an answer in flight. All JSON is
//! emitted with fixed key order and integer arithmetic only, so a
//! response body is byte-stable for a given store.

use crate::http::{escape_json, Response};
use scanstore::view::IndexEntry;
use scanstore::{flags, SnapshotSource, StoreView};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// An immutable, shareable set of campaign views.
#[derive(Debug)]
pub struct QueryEngine {
    root: PathBuf,
    views: BTreeMap<String, StoreView>,
}

/// Campaign subdirectories of `root` that hold a store manifest. The
/// root itself counts when it is a single-campaign store.
fn campaign_dirs(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut dirs = Vec::new();
    if root.join("manifest.json").is_file() {
        let name = root
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "store".to_string());
        dirs.push((name, root.to_path_buf()));
        return Ok(dirs);
    }
    for dirent in std::fs::read_dir(root)? {
        let dirent = dirent?;
        let path = dirent.path();
        if path.is_dir() && path.join("manifest.json").is_file() {
            dirs.push((dirent.file_name().to_string_lossy().into_owned(), path));
        }
    }
    dirs.sort();
    Ok(dirs)
}

impl QueryEngine {
    /// Opens every campaign store under `root` (read-only). `root` may
    /// be a PR 3 bundle store (`<root>/<campaign>/manifest.json`) or a
    /// single store directory.
    pub fn open(root: impl AsRef<Path>) -> io::Result<QueryEngine> {
        let root = root.as_ref().to_path_buf();
        if !root.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("store directory {} does not exist", root.display()),
            ));
        }
        let mut views = BTreeMap::new();
        for (name, dir) in campaign_dirs(&root)? {
            views.insert(name, StoreView::open(&dir)?);
        }
        if views.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "no campaign stores under {} (expected <dir>/<campaign>/manifest.json; \
                     collect one with `repro --exp fig1 --store <dir>`)",
                    root.display()
                ),
            ));
        }
        Ok(QueryEngine { root, views })
    }

    /// Re-reads every campaign's manifest, decoding only new segments,
    /// and picks up campaigns that appeared since the engine was
    /// built. Returns the refreshed engine and whether anything
    /// actually changed.
    pub fn refresh(&self) -> io::Result<(QueryEngine, bool)> {
        let mut views = BTreeMap::new();
        let mut changed = false;
        for (name, view) in &self.views {
            let next = view.refresh()?;
            changed |= next.generation() != view.generation();
            views.insert(name.clone(), next);
        }
        for (name, dir) in campaign_dirs(&self.root)? {
            if let std::collections::btree_map::Entry::Vacant(slot) = views.entry(name) {
                slot.insert(StoreView::open(&dir)?);
                changed = true;
            }
        }
        Ok((
            QueryEngine {
                root: self.root.clone(),
                views,
            },
            changed,
        ))
    }

    /// A compact tag identifying the engine's store generations, e.g.
    /// `banner:3,weekly:8`. Cache keys embed it so a refresh naturally
    /// invalidates stale entries.
    pub fn generation_tag(&self) -> String {
        let mut tag = String::new();
        for (name, view) in &self.views {
            if !tag.is_empty() {
                tag.push(',');
            }
            let _ = write!(tag, "{name}:{}", view.generation());
        }
        tag
    }

    /// Campaign names, sorted.
    pub fn campaigns(&self) -> impl Iterator<Item = &str> {
        self.views.keys().map(String::as_str)
    }

    /// One campaign's view.
    pub fn view(&self, name: &str) -> Option<&StoreView> {
        self.views.get(name)
    }

    /// Routes one request target (path + query) to its handler.
    pub fn handle(&self, target: &str) -> Response {
        let (path, params) = crate::http::split_target(target);
        let get =
            |key: &str| -> Option<&str> { params.iter().find(|(k, _)| *k == key).map(|&(_, v)| v) };
        let family = match path {
            "/classify" => "classify",
            "/churn" => "churn",
            "/amplifiers" => "amplifiers",
            "/coverage" => "coverage",
            "/campaigns" => "campaigns",
            "/healthz" => "healthz",
            "/metrics" => "metrics",
            _ => {
                telemetry::counter_with("serve.requests", &[("family", "unknown")]).inc();
                return Response::error(404, &format!("unknown path {path}"));
            }
        };
        telemetry::counter_with("serve.requests", &[("family", family)]).inc();
        match path {
            "/classify" => self.classify(get("ip")),
            "/churn" => self.churn(get("asn"), get("campaign")),
            "/amplifiers" => self.amplifiers(get("country"), get("limit"), get("campaign")),
            "/coverage" => self.coverage(get("campaign")),
            "/campaigns" => self.campaign_inventory(),
            "/healthz" => self.healthz(),
            _ => metrics(),
        }
    }

    /// The campaign a query runs over: the explicit `campaign` param,
    /// else `weekly` when present, else the first campaign.
    fn pick_campaign(&self, requested: Option<&str>) -> Result<(&str, &StoreView), Response> {
        match requested {
            Some(name) => match self.views.get_key_value(name) {
                Some((k, v)) => Ok((k, v)),
                None => Err(Response::error(
                    404,
                    &format!("unknown campaign `{name}`; see /campaigns"),
                )),
            },
            None => {
                let (k, v) = self
                    .views
                    .get_key_value("weekly")
                    .or_else(|| self.views.iter().next())
                    .expect("engine has at least one campaign");
                Ok((k, v))
            }
        }
    }

    fn classify(&self, ip: Option<&str>) -> Response {
        let Some(ip_str) = ip else {
            return Response::error(400, "classify requires ?ip=a.b.c.d");
        };
        let Ok(ip) = ip_str.parse::<Ipv4Addr>() else {
            return Response::error(400, &format!("`{ip_str}` is not a dotted IPv4 address"));
        };
        let ip_u32 = u32::from(ip);
        let mut body = String::with_capacity(256);
        let _ = write!(body, "{{\"query\":\"classify\",\"ip\":\"{ip}\"");
        let mut found = false;
        let mut open_live = false;
        let mut any_live = false;
        let mut sections = String::new();
        for (name, view) in &self.views {
            let Some(e) = view.index().lookup(ip_u32) else {
                continue;
            };
            if !sections.is_empty() {
                sections.push(',');
            }
            found = true;
            any_live |= e.live;
            open_live |= e.live && e.latest.rcode == 0;
            let _ = write!(sections, "\"{name}\":");
            entry_json(view, e, &mut sections);
        }
        let summary = if open_live {
            "open-resolver-live"
        } else if any_live {
            "responding-error"
        } else if found {
            "churned"
        } else {
            "unknown"
        };
        let _ = writeln!(
            body,
            ",\"found\":{found},\"summary\":\"{summary}\",\"campaigns\":{{{sections}}}}}"
        );
        Response::ok(body)
    }

    fn churn(&self, asn: Option<&str>, campaign: Option<&str>) -> Response {
        let Some(asn_str) = asn else {
            return Response::error(400, "churn requires ?asn=<number>");
        };
        let Ok(asn) = asn_str.parse::<u32>() else {
            return Response::error(400, &format!("`{asn_str}` is not an AS number"));
        };
        let (name, view) = match self.pick_campaign(campaign) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let Some(series) = view.index().asn_series(asn) else {
            return Response::error(404, &format!("AS{asn} was never observed in `{name}`"));
        };
        let cohort = series.survivors.first().copied().unwrap_or(0);
        let mut body = String::with_capacity(256);
        let _ = write!(
            body,
            "{{\"query\":\"churn\",\"asn\":{asn},\"campaign\":\"{name}\",\"cohort\":{cohort}"
        );
        body.push_str(",\"snapshots\":[");
        for seq in 0..view.generation() {
            if seq > 0 {
                body.push(',');
            }
            let label = view.segment_meta(seq).map(|(l, _, _)| l).unwrap_or("");
            body.push('"');
            escape_json(label, &mut body);
            body.push('"');
        }
        body.push_str("],\"present\":");
        u64_array(&series.present, &mut body);
        body.push_str(",\"survivors\":");
        u64_array(&series.survivors, &mut body);
        // Parts-per-million retention of the snapshot-0 cohort:
        // integer arithmetic, so the curve is byte-stable.
        body.push_str(",\"retention_ppm\":[");
        for (i, &s) in series.survivors.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let ppm = (s * 1_000_000).checked_div(cohort).unwrap_or(0);
            let _ = write!(body, "{ppm}");
        }
        body.push_str("]}\n");
        Response::ok(body)
    }

    fn amplifiers(
        &self,
        country: Option<&str>,
        limit: Option<&str>,
        campaign: Option<&str>,
    ) -> Response {
        let Some(country) = country else {
            return Response::error(400, "amplifiers requires ?country=CC");
        };
        let limit = match limit {
            None => 10usize,
            Some(s) => match s.parse::<usize>() {
                Ok(n) if n >= 1 => n.min(200),
                _ => return Response::error(400, "limit must be a positive integer"),
            },
        };
        let (name, view) = match self.pick_campaign(campaign) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let mut candidates: Vec<&IndexEntry> = view
            .index()
            .entries()
            .iter()
            .filter(|e| e.live && e.latest.rcode == 0 && view.string(e.latest.country) == country)
            .collect();
        let total = candidates.len();
        // Highest score first; ties resolve by address so the ranking
        // is a total order.
        candidates.sort_by_key(|e| (std::cmp::Reverse(amp_score(e)), e.ip));
        candidates.truncate(limit);
        let mut body = String::with_capacity(128 + candidates.len() * 96);
        let _ = write!(
            body,
            "{{\"query\":\"amplifiers\",\"country\":\"{}\",\"campaign\":\"{name}\",\
             \"total_candidates\":{total},\"returned\":{},\"candidates\":[",
            {
                let mut esc = String::new();
                escape_json(country, &mut esc);
                esc
            },
            candidates.len()
        );
        for (i, e) in candidates.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let _ = write!(
                body,
                "{{\"ip\":\"{}\",\"asn\":{},\"score\":{},\"rounds\":{},\
                 \"tcp_responsive\":{},\"software\":\"",
                Ipv4Addr::from(e.ip),
                e.latest.asn,
                amp_score(e),
                e.rounds,
                e.latest.flags & flags::TCP_RESPONSIVE != 0,
            );
            escape_json(view.string(e.latest.software), &mut body);
            body.push_str("\"}");
        }
        body.push_str("]}\n");
        Response::ok(body)
    }

    fn coverage(&self, campaign: Option<&str>) -> Response {
        let (name, view) = match self.pick_campaign(campaign) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let idx = view.index();
        let live = idx.snapshot_sizes().last().copied().unwrap_or(0);
        let mut body = String::with_capacity(256);
        let _ = write!(
            body,
            "{{\"query\":\"coverage\",\"campaign\":\"{name}\",\"generation\":{},\
             \"live_records\":{live},\"distinct_ips\":{},\"snapshots\":[",
            view.generation(),
            idx.entries().len()
        );
        for seq in 0..view.generation() {
            if seq > 0 {
                body.push(',');
            }
            let (label, t_ms, meta) = view.segment_meta(seq).expect("seq < generation");
            let _ = write!(body, "{{\"seq\":{seq},\"label\":\"");
            escape_json(label, &mut body);
            let _ = write!(
                body,
                "\",\"t_ms\":{t_ms},\"records\":{},\"meta\":{{",
                idx.snapshot_sizes()[seq as usize]
            );
            for (i, (k, v)) in meta.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push('"');
                escape_json(k, &mut body);
                body.push_str("\":\"");
                escape_json(v, &mut body);
                body.push('"');
            }
            body.push_str("}}");
        }
        body.push_str("]}\n");
        Response::ok(body)
    }

    fn campaign_inventory(&self) -> Response {
        let mut body = String::from("{\"query\":\"campaigns\",\"campaigns\":[");
        for (i, (name, view)) in self.views.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let live = view.index().snapshot_sizes().last().copied().unwrap_or(0);
            let _ = write!(
                body,
                "{{\"name\":\"{name}\",\"generation\":{},\"live_records\":{live},\
                 \"distinct_ips\":{},\"recovered\":{}}}",
                view.generation(),
                view.index().entries().len(),
                view.recovered()
            );
        }
        body.push_str("]}\n");
        Response::ok(body)
    }

    fn healthz(&self) -> Response {
        let mut body = format!(
            "{{\"ok\":true,\"generations\":\"{}\"}}\n",
            self.generation_tag()
        );
        // healthz is read on every fleet warm-up; keep it cacheable so
        // the cache sees traffic even on tiny stores.
        body.shrink_to_fit();
        Response::ok(body)
    }
}

/// The live telemetry snapshot. Never cached and excluded from fleet
/// digests: counters move between calls by design.
fn metrics() -> Response {
    Response {
        status: 200,
        body: telemetry::snapshot().to_json().into_bytes(),
        cacheable: false,
    }
}

/// Deterministic integer amplification score: stability (rounds
/// present) dominates, TCP fallback and a known software banner add
/// confidence, proxy forwarding a little more.
fn amp_score(e: &IndexEntry) -> u64 {
    let mut score = u64::from(e.rounds) * 1000;
    if e.latest.flags & flags::TCP_RESPONSIVE != 0 {
        score += 500;
    }
    if e.latest.software != 0 {
        score += 100;
    }
    if e.latest.flags & flags::PROXY != 0 {
        score += 25;
    }
    score
}

fn u64_array(values: &[u64], out: &mut String) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

fn entry_json(view: &StoreView, e: &IndexEntry, out: &mut String) {
    let o = &e.latest;
    let chaos = match flags::chaos_outcome(o.flags) {
        flags::CHAOS_ERRORS => "errors",
        flags::CHAOS_EMPTY => "empty",
        flags::CHAOS_VERSION => "version",
        _ => "silent",
    };
    let _ = write!(
        out,
        "{{\"live\":{},\"rcode\":{},\"proxy\":{},\"tcp_responsive\":{},\"chaos\":\"{chaos}\",",
        e.live,
        o.rcode,
        o.flags & flags::PROXY != 0,
        o.flags & flags::TCP_RESPONSIVE != 0,
    );
    for (key, id) in [
        ("software", o.software),
        ("device", o.device),
        ("country", o.country),
        ("rdns", o.rdns),
    ] {
        let _ = write!(out, "\"{key}\":\"");
        escape_json(view.string(id), out);
        out.push_str("\",");
    }
    let _ = write!(
        out,
        "\"asn\":{},\"banner_hash\":{},\"value\":{},\"first_seq\":{},\"last_seq\":{},\
         \"rounds\":{},\"snapshots\":{},\"first_seen_ms\":{},\"last_seen_ms\":{}}}",
        o.asn,
        o.banner_hash,
        o.value,
        e.first_seq,
        e.last_seq,
        e.rounds,
        view.generation(),
        o.first_seen_ms,
        o.last_seen_ms
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanstore::{CampaignStore, Observation, ObservationSink, SnapshotSink};
    use std::fs;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> TempDir {
            let path =
                std::env::temp_dir().join(format!("gw-engine-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn seed_store(dir: &Path) {
        let mut store = CampaignStore::open(dir.join("weekly")).unwrap();
        let us = store.intern("US");
        let de = store.intern("DE");
        let soft = store.intern("dnsmasq-2.51");
        for week in 0u32..3 {
            for ip in [10u32, 20, 30, 40] {
                if ip == 40 && week > 0 {
                    continue; // 40 churns out after week 0
                }
                let mut o =
                    Observation::at(ip, if ip == 30 { 5 } else { 0 }, 1_000 + u64::from(week));
                o.country = if ip == 20 { de } else { us };
                o.asn = if ip == 20 { 2 } else { 1 };
                if ip == 10 {
                    o.software = soft;
                    o.flags = scanstore::flags::TCP_RESPONSIVE;
                }
                store.observe(o);
            }
            store
                .commit(&format!("week-{week}"), 1_000 + u64::from(week), &[])
                .unwrap();
        }
    }

    fn body(r: &Response) -> String {
        String::from_utf8(r.body.clone()).unwrap()
    }

    #[test]
    fn classify_answers_from_the_index() {
        let tmp = TempDir::new("classify");
        seed_store(&tmp.0);
        let engine = QueryEngine::open(&tmp.0).unwrap();

        let r = engine.handle("/classify?ip=0.0.0.10");
        assert_eq!(r.status, 200);
        let b = body(&r);
        assert!(b.contains("\"summary\":\"open-resolver-live\""), "{b}");
        assert!(b.contains("\"software\":\"dnsmasq-2.51\""), "{b}");
        assert!(b.contains("\"tcp_responsive\":true"), "{b}");
        assert!(b.contains("\"rounds\":3"), "{b}");

        let churned = body(&engine.handle("/classify?ip=0.0.0.40"));
        assert!(churned.contains("\"summary\":\"churned\""), "{churned}");
        let unknown = body(&engine.handle("/classify?ip=9.9.9.9"));
        assert!(unknown.contains("\"found\":false"), "{unknown}");
        assert_eq!(engine.handle("/classify?ip=banana").status, 400);
        assert_eq!(engine.handle("/classify").status, 400);
    }

    #[test]
    fn churn_and_amplifiers_and_coverage() {
        let tmp = TempDir::new("families");
        seed_store(&tmp.0);
        let engine = QueryEngine::open(&tmp.0).unwrap();

        let churn = body(&engine.handle("/churn?asn=1"));
        assert!(churn.contains("\"present\":[3,2,2]"), "{churn}");
        assert!(churn.contains("\"survivors\":[3,2,2]"), "{churn}");
        assert!(churn.contains("\"cohort\":3"), "{churn}");
        assert_eq!(engine.handle("/churn?asn=999").status, 404);
        assert_eq!(engine.handle("/churn").status, 400);

        let amp = body(&engine.handle("/amplifiers?country=US&limit=5"));
        assert!(amp.contains("\"total_candidates\":1"), "{amp}");
        assert!(amp.contains("\"ip\":\"0.0.0.10\""), "{amp}");
        // 30 has rcode 5 and 40 churned: neither is a candidate.
        assert!(!amp.contains("0.0.0.30"), "{amp}");
        assert_eq!(engine.handle("/amplifiers").status, 400);

        let cov = body(&engine.handle("/coverage?campaign=weekly"));
        assert!(cov.contains("\"generation\":3"), "{cov}");
        assert!(cov.contains("\"label\":\"week-2\""), "{cov}");
        assert_eq!(engine.handle("/coverage?campaign=nope").status, 404);

        assert_eq!(engine.handle("/nope").status, 404);
    }

    #[test]
    fn responses_are_byte_identical() {
        let tmp = TempDir::new("stable");
        seed_store(&tmp.0);
        let engine = QueryEngine::open(&tmp.0).unwrap();
        for target in [
            "/classify?ip=0.0.0.10",
            "/churn?asn=1",
            "/amplifiers?country=US",
            "/coverage",
            "/campaigns",
        ] {
            assert_eq!(engine.handle(target), engine.handle(target), "{target}");
        }
        // A freshly opened engine over the same bytes agrees too.
        let engine2 = QueryEngine::open(&tmp.0).unwrap();
        assert_eq!(
            engine.handle("/classify?ip=0.0.0.10"),
            engine2.handle("/classify?ip=0.0.0.10")
        );
    }

    #[test]
    fn refresh_picks_up_new_commits() {
        let tmp = TempDir::new("refresh");
        seed_store(&tmp.0);
        let engine = QueryEngine::open(&tmp.0).unwrap();
        assert_eq!(engine.generation_tag(), "weekly:3");
        let (same, changed) = engine.refresh().unwrap();
        assert!(!changed);
        assert_eq!(same.generation_tag(), "weekly:3");

        let mut store = CampaignStore::open(tmp.0.join("weekly")).unwrap();
        store.observe(Observation::at(50, 0, 2_000));
        store.commit("week-3", 2_000, &[]).unwrap();
        let (next, changed) = engine.refresh().unwrap();
        assert!(changed);
        assert_eq!(next.generation_tag(), "weekly:4");
        let b = body(&next.handle("/classify?ip=0.0.0.50"));
        assert!(b.contains("\"found\":true"), "{b}");
        // The old engine still answers from its own generation.
        assert!(body(&engine.handle("/classify?ip=0.0.0.50")).contains("\"found\":false"));
    }
}
