//! Process-signal plumbing for graceful shutdown.
//!
//! A single atomic flag is flipped by SIGINT/SIGTERM (or by
//! [`trigger`] for in-process shutdown in tests and `--selftest`).
//! The accept loop polls [`triggered`] between accepts; once set, the
//! server stops accepting, drains in-flight requests, and flushes a
//! final metrics snapshot.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once shutdown has been requested.
pub fn triggered() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests shutdown from inside the process.
pub fn trigger() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Re-arms the flag so a fresh server can run in the same process
/// (selftest starts a daemon, stops it, and may start another).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod unix {
    use std::ffi::c_void;

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    extern "C" {
        // libc's simplified signal(2) binding; enough for a
        // set-a-flag handler without vendoring all of sigaction.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> *mut c_void;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Installs SIGINT/SIGTERM handlers that flip the shutdown flag.
/// No-op on non-unix targets ([`trigger`] still works everywhere).
pub fn install() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_and_reset_round_trip() {
        reset();
        assert!(!triggered());
        trigger();
        assert!(triggered());
        reset();
        assert!(!triggered());
    }
}
