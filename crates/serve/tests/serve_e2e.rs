//! End-to-end tests: a real daemon on a loopback port, answering the
//! four query families from a store collected by the PR 3 bundle
//! pipeline, plus determinism and live-refresh guarantees.

use goingwild::{collect_bundle, BundleOptions, CampaignKind, WorldConfig};
use scanstore::{CampaignStore, Observation, ObservationSink, SnapshotSink};
use serve::{run_fleet, FleetOptions, RunningServer, ServeOptions};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("gw-serve-e2e-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Collects a small two-week weekly campaign into `dir` with the real
/// bundle pipeline.
fn collect_store(dir: &Path) {
    let mut cfg = WorldConfig::tiny(11);
    cfg.weeks = 2;
    let mut opts = BundleOptions::new(cfg);
    opts.weeks = 2;
    collect_bundle(&opts, &[CampaignKind::Weekly], Some(dir)).unwrap();
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let status: u16 = text["HTTP/1.1 ".len()..][..3].parse().unwrap();
    let body = text.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

fn options(store: &Path) -> ServeOptions {
    ServeOptions {
        store: store.to_path_buf(),
        addr: "127.0.0.1:0".to_string(),
        cache_cap: 64,
        refresh_ms: 50,
        metrics: None,
        announce: false,
    }
}

#[test]
fn four_families_over_a_collected_bundle() {
    let tmp = TempDir::new("families");
    collect_store(&tmp.0);
    let server = RunningServer::start(&options(&tmp.0)).unwrap();
    let addr = server.addr();

    let (status, campaigns) = get(addr, "/campaigns");
    assert_eq!(status, 200);
    assert!(campaigns.contains("\"name\":\"weekly\""), "{campaigns}");
    assert!(campaigns.contains("\"generation\":2"), "{campaigns}");

    // Pull a live IP out of the coverage answer's campaign, then
    // classify it.
    let (status, coverage) = get(addr, "/coverage?campaign=weekly");
    assert_eq!(status, 200);
    assert!(coverage.contains("\"generation\":2"), "{coverage}");
    assert!(coverage.contains("\"label\":\"week-"), "{coverage}");

    // The weekly campaign observes real resolvers; ask the fleet
    // planner for a known-hot one by querying an aggregate first.
    let (status, amp) = get(addr, "/amplifiers?country=CN&limit=3");
    assert_eq!(status, 200, "{amp}");

    let (status, churn_err) = get(addr, "/churn?asn=4294967294");
    assert_eq!(status, 404, "{churn_err}");

    let (status, classify) = get(addr, "/classify?ip=198.51.100.77");
    assert_eq!(status, 200);
    assert!(classify.contains("\"summary\":"), "{classify}");

    let (status, health) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(health.contains("\"ok\":true"), "{health}");

    let summary = server.stop().unwrap();
    assert!(summary.requests >= 6, "{summary:?}");
}

#[test]
fn same_seed_fleet_runs_are_byte_identical() {
    let tmp = TempDir::new("determinism");
    collect_store(&tmp.0);
    let server = RunningServer::start(&options(&tmp.0)).unwrap();

    let fleet = FleetOptions {
        addr: server.addr(),
        store: tmp.0.clone(),
        seed: 42,
        clients: 3,
        requests: 40,
    };
    let first = run_fleet(&fleet).unwrap();
    let second = run_fleet(&fleet).unwrap();
    assert_eq!(first.errors, 0, "{first:?}");
    assert_eq!(first.requests, 120);
    assert_eq!(first.digest, second.digest);
    assert_eq!(first.bytes, second.bytes);
    assert_eq!(first.deterministic_json(), second.deterministic_json());

    let other = run_fleet(&FleetOptions { seed: 43, ..fleet }).unwrap();
    assert_ne!(first.digest, other.digest, "different seed, same digest");

    // The second identical run must have hit the response cache, and
    // cold paths must have missed it.
    let snap = telemetry::snapshot();
    assert!(snap.counter("serve.cache.hit").unwrap_or(0) > 0);
    assert!(snap.counter("serve.cache.miss").unwrap_or(0) > 0);
    server.stop().unwrap();
}

#[test]
fn refresh_serves_new_commits_without_dropping_queries() {
    let tmp = TempDir::new("refresh");
    // A handwritten store this time: the test needs to commit while
    // the daemon is live.
    let mut store = CampaignStore::open(tmp.0.join("weekly")).unwrap();
    for ip in 1u32..=32 {
        store.observe(Observation::at(ip, 0, 1_000));
    }
    store.commit("week-0", 1_000, &[]).unwrap();

    let server = RunningServer::start(&options(&tmp.0)).unwrap();
    let addr = server.addr();
    let (_, before) = get(addr, "/classify?ip=0.0.1.1");
    assert!(before.contains("\"found\":false"), "{before}");

    // Hammer the daemon from background threads while the writer
    // commits a new generation.
    let stop_flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut readers = Vec::new();
    for t in 0..4u32 {
        let stop = std::sync::Arc::clone(&stop_flag);
        readers.push(std::thread::spawn(move || {
            let mut answered = 0u32;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let ip = 1 + (answered + t) % 32;
                let (status, _) = get(addr, &format!("/classify?ip=0.0.0.{ip}"));
                assert_eq!(status, 200);
                answered += 1;
            }
            answered
        }));
    }

    store.observe(Observation::at(257, 0, 2_000)); // 0.0.1.1
    for ip in 1u32..=32 {
        store.observe(Observation::at(ip, 0, 2_000));
    }
    store.commit("week-1", 2_000, &[]).unwrap();

    // The daemon must pick the commit up via its refresh timer.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = get(addr, "/classify?ip=0.0.1.1");
        assert_eq!(status, 200);
        if body.contains("\"found\":true") {
            break;
        }
        assert!(Instant::now() < deadline, "refresh never surfaced week-1");
        std::thread::sleep(Duration::from_millis(25));
    }

    stop_flag.store(true, std::sync::atomic::Ordering::SeqCst);
    for reader in readers {
        let answered = reader.join().unwrap();
        assert!(answered > 0, "reader thread made no progress");
    }
    let summary = server.stop().unwrap();
    assert!(summary.refreshes >= 1, "{summary:?}");
}
