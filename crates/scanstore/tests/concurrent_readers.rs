//! Stress test: a writer committing new generations while reader
//! threads concurrently open and refresh [`StoreView`]s. Readers must
//! only ever observe fully committed generations — never a torn
//! manifest, never a mix of segments from different generations.
//!
//! The generation contract makes torn reads detectable: commit `s`
//! contains exactly the IPs `1..=10+s`, all stamped `BASE_MS + s`, so
//! any view whose contents disagree with its own generation number
//! caught the store mid-commit.

use scanstore::{CampaignStore, Observation, ObservationSink, SnapshotSink, StoreView};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("scanstress-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

const BASE_MS: u64 = 1_000_000;
const COMMITS: u32 = 24;

/// Checks every generation-dependent invariant of one view.
fn check_view(view: &StoreView) {
    let g = view.generation();
    if g == 0 {
        return; // opened before the first commit landed
    }
    let idx = view.index();
    assert_eq!(idx.snapshot_sizes().len() as u32, g);
    for s in 0..g {
        // Labels must be the contiguous prefix week-0..week-(g-1): a
        // mixed-generation view would skip or repeat one.
        let (label, t_ms, _meta) = view
            .segment_meta(s)
            .unwrap_or_else(|| panic!("generation {g} is missing segment {s}"));
        assert_eq!(label, format!("week-{s}"), "segment order torn");
        assert_eq!(t_ms, BASE_MS + u64::from(s));
        // Commit s holds exactly 10+s IPs.
        assert_eq!(idx.snapshot_sizes()[s as usize], u64::from(10 + s));
    }
    // IP 1 is in every commit; its summary must match the view's own
    // generation exactly.
    let e = idx.lookup(1).expect("ip 1 is in every commit");
    assert_eq!(e.rounds, g, "rounds disagree with generation");
    assert_eq!(e.last_seq, g - 1);
    assert_eq!(e.latest.last_seen_ms, BASE_MS + u64::from(g - 1));
    assert!(e.live);
    // The newest IP of the latest commit exists; one past it does not.
    assert!(idx.lookup(10 + g - 1).is_some());
    assert!(idx.lookup(10 + g).is_none());
}

fn write_generations(dir: &Path) {
    let mut store = CampaignStore::open(dir).unwrap();
    for s in 0..COMMITS {
        for ip in 1..=(10 + s) {
            store.observe(Observation::at(ip, 0, BASE_MS + u64::from(s)));
        }
        store
            .commit(&format!("week-{s}"), BASE_MS + u64::from(s), &[])
            .unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn readers_never_observe_torn_or_mixed_generations() {
    let tmp = TempDir::new("torn-read");
    let dir = tmp.0.clone();
    // First commit before any reader starts, so `StoreView::open`
    // always has a manifest to find.
    {
        let mut store = CampaignStore::open(&dir).unwrap();
        store.observe(Observation::at(1, 0, BASE_MS));
        for ip in 2..=10u32 {
            store.observe(Observation::at(ip, 0, BASE_MS));
        }
        store.commit("week-0", BASE_MS, &[]).unwrap();
    }

    let done = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for reader in 0..4u32 {
        let dir = dir.clone();
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut view = StoreView::open(&dir).unwrap();
            let mut reopens = 0u32;
            let mut max_gen = 0u32;
            while !done.load(Ordering::SeqCst) {
                // Half the readers re-open cold, half refresh a
                // long-lived view; both paths must hold the contract.
                if reader % 2 == 0 {
                    view = StoreView::open(&dir).unwrap();
                } else {
                    view = view.refresh().unwrap();
                }
                check_view(&view);
                assert!(
                    view.generation() >= max_gen,
                    "generation went backwards: {} < {max_gen}",
                    view.generation()
                );
                max_gen = view.generation();
                reopens += 1;
            }
            reopens
        }));
    }

    // The writer runs on this thread; `CampaignStore` keeps exclusive
    // write ownership while views read concurrently.
    {
        let mut store = CampaignStore::open(&dir).unwrap();
        for s in 1..COMMITS {
            for ip in 1..=(10 + s) {
                store.observe(Observation::at(ip, 0, BASE_MS + u64::from(s)));
            }
            store
                .commit(&format!("week-{s}"), BASE_MS + u64::from(s), &[])
                .unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    done.store(true, Ordering::SeqCst);
    for reader in readers {
        let reopens = reader.join().expect("reader saw a torn store");
        assert!(reopens > 0, "reader never completed a read");
    }

    // After the dust settles everyone converges on the final
    // generation.
    let view = StoreView::open(&dir).unwrap();
    assert_eq!(view.generation(), COMMITS);
    check_view(&view);
}

#[test]
fn cloned_views_share_segments_across_threads() {
    let tmp = TempDir::new("clone-share");
    write_generations(&tmp.0);
    let view = StoreView::open(&tmp.0).unwrap();
    // A view is Send + Sync: fan one instance out to threads that all
    // answer from the same decoded segments.
    let view = Arc::new(view);
    let mut workers = Vec::new();
    for _ in 0..4 {
        let view = Arc::clone(&view);
        workers.push(std::thread::spawn(move || {
            check_view(&view);
            view.index().entries().len()
        }));
    }
    for w in workers {
        assert_eq!(w.join().unwrap(), (10 + COMMITS - 1) as usize);
    }
}
