//! Property test: the interned read-side index ([`scanstore::ReadIndex`])
//! must agree with a plain linear scan of the decoded snapshots, for
//! arbitrary committed stores. The scan side goes through the writer's
//! own `CampaignStore` reader, so the two paths share no index code.

use proptest::prelude::*;
use scanstore::{
    CampaignStore, Observation, ObservationSink, SnapshotSink, SnapshotSource, StoreView,
};
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("scanview-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

const BASE_MS: u64 = 1_000_000;

fn arb_observation() -> impl Strategy<Value = Observation> {
    (
        0u32..400,
        any::<u8>(),
        any::<u8>(),
        any::<u32>(),
        0u32..6,
        any::<u64>(),
        0u64..1 << 40,
        0u64..1 << 40,
    )
        .prop_map(
            |(ip, rcode, flags, software, asn, banner_hash, first, dur)| Observation {
                ip,
                rcode,
                flags,
                software,
                device: software % 7,
                country: software % 5,
                asn,
                rdns: software % 3,
                banner_hash,
                value: banner_hash ^ dur,
                first_seen_ms: first,
                last_seen_ms: first + dur,
            },
        )
}

fn arb_batch() -> impl Strategy<Value = Vec<Observation>> {
    proptest::collection::vec(arb_observation(), 0..80).prop_map(|mut v| {
        v.sort_by_key(|o| o.ip);
        v.dedup_by_key(|o| o.ip);
        v
    })
}

/// The linear-scan oracle: everything the index claims, recomputed
/// naively from materialized snapshots.
struct Scan {
    per_ip: BTreeMap<u32, (Observation, u32, u32, u32)>, // latest, first, last, rounds
    present: BTreeMap<u32, Vec<u64>>,
    survivors: BTreeMap<u32, Vec<u64>>,
    sizes: Vec<u64>,
}

fn linear_scan(store: &CampaignStore) -> Scan {
    let snapshots = store.snapshot_count();
    let mut scan = Scan {
        per_ip: BTreeMap::new(),
        present: BTreeMap::new(),
        survivors: BTreeMap::new(),
        sizes: Vec::new(),
    };
    let mut cohort0: HashMap<u32, u32> = HashMap::new();
    for seq in 0..snapshots {
        let snap = store.snapshot(seq).unwrap();
        scan.sizes.push(snap.records.len() as u64);
        if seq == 0 {
            for o in &snap.records {
                cohort0.insert(o.ip, o.asn);
            }
        }
        for o in &snap.records {
            scan.per_ip
                .entry(o.ip)
                .and_modify(|(latest, _, last, rounds)| {
                    *latest = *o;
                    *last = seq;
                    *rounds += 1;
                })
                .or_insert((*o, seq, seq, 1));
            let series = scan.present.entry(o.asn).or_default();
            series.resize(snapshots as usize, 0);
            series[seq as usize] += 1;
            if let Some(&asn0) = cohort0.get(&o.ip) {
                let series = scan.survivors.entry(asn0).or_default();
                series.resize(snapshots as usize, 0);
                series[seq as usize] += 1;
            }
        }
    }
    scan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn index_agrees_with_linear_scan(batches in proptest::collection::vec(arb_batch(), 1..5)) {
        let tmp = TempDir::new("prop-index");
        {
            let mut store = CampaignStore::open(&tmp.0).unwrap();
            for (w, batch) in batches.iter().enumerate() {
                for o in batch {
                    store.observe(*o);
                }
                store.commit(&format!("week-{w}"), BASE_MS + w as u64, &[]).unwrap();
            }
        }
        let store = CampaignStore::open(&tmp.0).unwrap();
        let view = StoreView::open(&tmp.0).unwrap();
        let scan = linear_scan(&store);
        let idx = view.index();
        let last = store.snapshot_count() - 1;

        // Per-IP point lookups.
        prop_assert_eq!(idx.entries().len(), scan.per_ip.len());
        for (&ip, &(latest, first_seq, last_seq, rounds)) in &scan.per_ip {
            let e = idx.lookup(ip).expect("scanned IP must be indexed");
            prop_assert_eq!(e.latest, latest);
            prop_assert_eq!(e.first_seq, first_seq);
            prop_assert_eq!(e.last_seq, last_seq);
            prop_assert_eq!(e.rounds, rounds);
            prop_assert_eq!(e.live, last_seq == last);
        }
        // No phantom entries: everything indexed was scanned, and IPs
        // never committed are absent.
        for e in idx.entries() {
            prop_assert!(scan.per_ip.contains_key(&e.ip));
        }
        prop_assert!(idx.lookup(401).is_none());

        // Aggregates: per-AS presence/survival and snapshot sizes.
        prop_assert_eq!(idx.snapshot_sizes(), scan.sizes.as_slice());
        let indexed_asns: Vec<u32> = idx.asns().collect();
        let scanned_asns: Vec<u32> = scan
            .present
            .keys()
            .chain(scan.survivors.keys())
            .copied()
            .collect::<std::collections::BTreeSet<u32>>()
            .into_iter()
            .collect();
        prop_assert_eq!(indexed_asns, scanned_asns);
        let zeroes = vec![0u64; store.snapshot_count() as usize];
        for asn in idx.asns() {
            let series = idx.asn_series(asn).unwrap();
            let present = scan.present.get(&asn).unwrap_or(&zeroes);
            let survivors = scan.survivors.get(&asn).unwrap_or(&zeroes);
            prop_assert_eq!(&series.present, present);
            prop_assert_eq!(&series.survivors, survivors);
        }

        // Strings resolve identically through both readers.
        for e in idx.entries() {
            prop_assert_eq!(
                SnapshotSource::string(&view, e.latest.country),
                store.string(e.latest.country)
            );
        }
    }
}
