//! Integration tests for the persistent store: property-based
//! encode/decode round-trips, torn-write recovery, and
//! checkpoint/resume semantics.

use proptest::prelude::*;
use scanstore::record::{decode_record, encode_record};
use scanstore::segment::{self, Kind, Segment};
use scanstore::varint::Reader;
use scanstore::{
    CampaignStore, Observation, ObservationSink, SnapshotDiff, SnapshotSink, SnapshotSource,
};
use std::fs;
use std::path::PathBuf;

/// A scratch directory that cleans up on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("scanstore-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

const BASE_MS: u64 = 1_000_000;

fn arb_observation() -> impl Strategy<Value = Observation> {
    (
        any::<u32>(),
        any::<u8>(),
        any::<u8>(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        0u64..1 << 40,
        0u64..1 << 40,
    )
        .prop_map(
            |(ip, rcode, flags, software, country, banner_hash, first, dur)| Observation {
                ip,
                rcode,
                flags,
                software,
                device: software % 7,
                country,
                asn: country.rotate_left(5),
                rdns: country % 3,
                banner_hash,
                value: banner_hash ^ dur,
                first_seen_ms: first,
                last_seen_ms: first + dur,
            },
        )
}

/// Sorted-unique batch, as produced by a sink commit.
fn arb_batch() -> impl Strategy<Value = Vec<Observation>> {
    proptest::collection::vec(arb_observation(), 0..120).prop_map(|mut v| {
        v.sort_by_key(|o| o.ip);
        v.dedup_by_key(|o| o.ip);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn record_roundtrip_arbitrary(obs in arb_observation(), prev in any::<u32>()) {
        let prev_ip = prev.min(obs.ip);
        let mut buf = Vec::new();
        encode_record(&mut buf, &obs, prev_ip, BASE_MS);
        let mut r = Reader::new(&buf);
        let back = decode_record(&mut r, prev_ip, BASE_MS).unwrap();
        prop_assert_eq!(back, obs);
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn segment_roundtrip_arbitrary_batches(prev in arb_batch(), next in arb_batch()) {
        let diff = SnapshotDiff::between(&prev, &next);
        prop_assert_eq!(diff.apply(&prev), next.clone());
        let seg = Segment {
            seq: 1,
            t_ms: BASE_MS,
            kind: Kind::Delta,
            label: "week-1".to_string(),
            meta: vec![("truth".to_string(), "42".to_string())],
            new_strings: vec!["US".to_string()],
            diff,
        };
        let decoded = segment::decode(&segment::encode(&seg)).unwrap();
        prop_assert_eq!(decoded, seg);
    }

    #[test]
    fn store_roundtrip_arbitrary_batches(batches in proptest::collection::vec(arb_batch(), 1..5)) {
        let tmp = TempDir::new("prop-store");
        {
            let mut store = CampaignStore::open(&tmp.0).unwrap();
            for (w, batch) in batches.iter().enumerate() {
                for o in batch {
                    store.observe(*o);
                }
                store
                    .commit(&format!("week-{w}"), BASE_MS + w as u64, &[])
                    .unwrap();
            }
        }
        let store = CampaignStore::open(&tmp.0).unwrap();
        prop_assert_eq!(store.snapshot_count() as usize, batches.len());
        for (w, batch) in batches.iter().enumerate() {
            let snap = store.snapshot(w as u32).unwrap();
            prop_assert_eq!(&snap.records, batch);
            prop_assert_eq!(snap.label, format!("week-{w}"));
        }
    }
}

fn obs(ip: u32, rcode: u8) -> Observation {
    Observation::at(ip, rcode, BASE_MS)
}

fn commit_weeks(store: &mut CampaignStore, weeks: std::ops::Range<u32>) {
    for w in weeks {
        // Population drifts so every segment has removals and upserts.
        for ip in 0..200u32 {
            if (ip + w) % 7 != 0 {
                store.observe(obs(ip, (ip % 3) as u8));
            }
        }
        store
            .commit(&format!("week-{w}"), BASE_MS + u64::from(w), &[])
            .unwrap();
    }
}

#[test]
fn torn_write_rolls_back_to_last_valid_segment() {
    let tmp = TempDir::new("torn");
    {
        let mut store = CampaignStore::open(&tmp.0).unwrap();
        commit_weeks(&mut store, 0..3);
        assert_eq!(store.snapshot_count(), 3);
    }
    // Tear the last segment mid-record.
    let seg2 = tmp.0.join("seg-00002.gws");
    let bytes = fs::read(&seg2).unwrap();
    fs::write(&seg2, &bytes[..bytes.len() / 2]).unwrap();

    let store = CampaignStore::open(&tmp.0).unwrap();
    assert_eq!(store.snapshot_count(), 2, "checkpoint must roll back");
    assert_eq!(store.stats().recovery_events, 1);
    assert!(!seg2.exists(), "torn segment must be deleted");
    // The surviving prefix still serves intact snapshots.
    let snap = store.snapshot(1).unwrap();
    assert!(!snap.records.is_empty());

    // The campaign can re-run week 2 and commit on top of the rollback.
    let mut store = CampaignStore::open(&tmp.0).unwrap();
    commit_weeks(&mut store, 2..3);
    assert_eq!(store.snapshot_count(), 3);
    assert_eq!(store.stats().recovery_events, 1, "recovery count persists");
}

#[test]
fn corrupted_middle_segment_rolls_back_past_it() {
    let tmp = TempDir::new("bitflip");
    {
        let mut store = CampaignStore::open(&tmp.0).unwrap();
        commit_weeks(&mut store, 0..4);
    }
    let seg1 = tmp.0.join("seg-00001.gws");
    let mut bytes = fs::read(&seg1).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&seg1, &bytes).unwrap();

    let store = CampaignStore::open(&tmp.0).unwrap();
    assert_eq!(
        store.snapshot_count(),
        1,
        "only the prefix before the flip survives"
    );
    assert_eq!(store.stats().recovery_events, 1);
    assert!(
        !tmp.0.join("seg-00002.gws").exists(),
        "segments past the rollback are deleted"
    );
    assert!(!tmp.0.join("seg-00003.gws").exists());
}

#[test]
fn resume_keeps_committed_prefix_bytes_unchanged() {
    let tmp = TempDir::new("resume");
    {
        let mut store = CampaignStore::open(&tmp.0).unwrap();
        assert_eq!(store.resumed_at(), None);
        commit_weeks(&mut store, 0..2);
    }
    let seg0 = fs::read(tmp.0.join("seg-00000.gws")).unwrap();
    let seg1 = fs::read(tmp.0.join("seg-00001.gws")).unwrap();

    {
        let mut store = CampaignStore::open(&tmp.0).unwrap();
        assert_eq!(store.resumed_at(), Some(2), "resume skips committed weeks");
        commit_weeks(&mut store, 2..4);
        assert_eq!(store.snapshot_count(), 4);
    }
    assert_eq!(fs::read(tmp.0.join("seg-00000.gws")).unwrap(), seg0);
    assert_eq!(fs::read(tmp.0.join("seg-00001.gws")).unwrap(), seg1);

    let store = CampaignStore::open(&tmp.0).unwrap();
    let stats = store.stats();
    assert_eq!(stats.segments, 4);
    assert_eq!(stats.recovery_events, 0, "clean resume is not a recovery");
    assert!(stats.bytes_written > 0);
    assert!(
        stats.compression_ratio > 1.0,
        "delta coding must beat JSON lines"
    );
}

#[test]
fn orphan_segment_and_tmp_files_are_swept() {
    let tmp = TempDir::new("orphan");
    {
        let mut store = CampaignStore::open(&tmp.0).unwrap();
        commit_weeks(&mut store, 0..2);
    }
    // Crash between segment rename and manifest write leaves an orphan.
    fs::write(tmp.0.join("seg-00002.gws"), b"half-written").unwrap();
    fs::write(tmp.0.join("seg-00003.gws.tmp"), b"scratch").unwrap();

    let store = CampaignStore::open(&tmp.0).unwrap();
    assert_eq!(store.snapshot_count(), 2);
    assert!(!tmp.0.join("seg-00002.gws").exists());
    assert!(!tmp.0.join("seg-00003.gws.tmp").exists());
}

#[test]
fn interned_strings_survive_reopen() {
    let tmp = TempDir::new("strings");
    let (us, de);
    {
        let mut store = CampaignStore::open(&tmp.0).unwrap();
        us = store.intern("US");
        de = store.intern("DE");
        let mut o = obs(1, 0);
        o.country = us;
        store.observe(o);
        store.commit("week-0", BASE_MS, &[]).unwrap();

        let mut o = obs(2, 0);
        o.country = de;
        store.observe(o);
        store.commit("week-1", BASE_MS + 1, &[]).unwrap();
    }
    let mut store = CampaignStore::open(&tmp.0).unwrap();
    assert_eq!(store.string(us), "US");
    assert_eq!(store.string(de), "DE");
    assert_eq!(
        store.intern("US"),
        us,
        "intern ids are stable across reopen"
    );
    assert_eq!(store.string(0), "");
}

#[test]
fn diff_cursor_matches_materialized_snapshots() {
    let tmp = TempDir::new("diff");
    {
        let mut store = CampaignStore::open(&tmp.0).unwrap();
        commit_weeks(&mut store, 0..3);
    }
    let store = CampaignStore::open(&tmp.0).unwrap();
    for seq in 0..2 {
        let prev = store.snapshot(seq).unwrap();
        let next = store.snapshot(seq + 1).unwrap();
        let expect = SnapshotDiff::between(&prev.records, &next.records);
        assert_eq!(store.diff(seq).unwrap(), expect);
    }
    assert!(store.diff(2).is_err(), "no diff past the last snapshot");
}
