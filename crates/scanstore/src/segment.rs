//! On-disk segment format.
//!
//! One segment holds one committed snapshot, encoded as a delta against
//! the previous snapshot (segment 0 deltas against the empty snapshot,
//! i.e. it is a full encoding). Layout:
//!
//! ```text
//! magic   "GWS1"                      4 bytes
//! seq     u32 LE                      4 bytes
//! t_ms    u64 LE                      8 bytes
//! kind    u8  (0 = full, 1 = delta)
//! label   varint len + bytes
//! meta    varint count + (varint klen + k + varint vlen + v)*
//! dict    varint count + (varint len + bytes)*   — new interned strings
//! removed varint count + ip gap varints
//! upserts varint count + records (see record.rs)
//! crc     u32 LE over everything above
//! ```
//!
//! A torn write (truncation anywhere, including mid-CRC) fails decoding;
//! flipped bits fail the CRC. Either way the store rolls its checkpoint
//! back to the previous segment.

use crate::crc32::crc32;
use crate::record::{decode_record, encode_record, SnapshotDiff};
use crate::varint::{put_u64, Reader};
use std::io;

/// File magic, versioned.
pub const MAGIC: &[u8; 4] = b"GWS1";

/// Segment kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Delta against the empty snapshot.
    Full,
    /// Delta against the previous segment's snapshot.
    Delta,
}

/// A decoded segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Snapshot sequence number (0-based).
    pub seq: u32,
    /// Snapshot timestamp (sim milliseconds).
    pub t_ms: u64,
    /// Full or delta.
    pub kind: Kind,
    /// Human-readable snapshot label (`week-3`, `cohort`, …).
    pub label: String,
    /// Small key/value annotations (ground truth, campaign stats).
    pub meta: Vec<(String, String)>,
    /// Strings first interned by this snapshot, in id order.
    pub new_strings: Vec<String>,
    /// The delta payload.
    pub diff: SnapshotDiff,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(r: &mut Reader<'_>) -> io::Result<String> {
    let len = r.u64()? as usize;
    if len > 1 << 24 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "string too long",
        ));
    }
    let bytes = r.bytes(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid utf-8"))
}

/// Encodes a segment, CRC included.
pub fn encode(seg: &Segment) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + seg.diff.upserts.len() * 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&seg.seq.to_le_bytes());
    out.extend_from_slice(&seg.t_ms.to_le_bytes());
    out.push(match seg.kind {
        Kind::Full => 0,
        Kind::Delta => 1,
    });
    put_str(&mut out, &seg.label);
    put_u64(&mut out, seg.meta.len() as u64);
    for (k, v) in &seg.meta {
        put_str(&mut out, k);
        put_str(&mut out, v);
    }
    put_u64(&mut out, seg.new_strings.len() as u64);
    for s in &seg.new_strings {
        put_str(&mut out, s);
    }
    put_u64(&mut out, seg.diff.removed.len() as u64);
    let mut prev = 0u32;
    for &ip in &seg.diff.removed {
        put_u64(&mut out, u64::from(ip) - u64::from(prev));
        prev = ip;
    }
    put_u64(&mut out, seg.diff.upserts.len() as u64);
    let mut prev = 0u32;
    for o in &seg.diff.upserts {
        encode_record(&mut out, o, prev, seg.t_ms);
        prev = o.ip;
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Decodes and verifies a segment. Any truncation, trailing garbage, or
/// checksum mismatch is an error.
pub fn decode(buf: &[u8]) -> io::Result<Segment> {
    if buf.len() < MAGIC.len() + 4 {
        return Err(invalid("segment shorter than header"));
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(invalid("segment checksum mismatch"));
    }
    let mut r = Reader::new(body);
    if r.bytes(4)? != MAGIC {
        return Err(invalid("bad segment magic"));
    }
    let seq = u32::from_le_bytes(r.bytes(4)?.try_into().expect("4 bytes"));
    let t_ms = u64::from_le_bytes(r.bytes(8)?.try_into().expect("8 bytes"));
    let kind = match r.u8()? {
        0 => Kind::Full,
        1 => Kind::Delta,
        other => return Err(invalid(&format!("unknown segment kind {other}"))),
    };
    let label = read_str(&mut r)?;
    let meta_count = r.u64()? as usize;
    let mut meta = Vec::with_capacity(meta_count.min(1024));
    for _ in 0..meta_count {
        let k = read_str(&mut r)?;
        let v = read_str(&mut r)?;
        meta.push((k, v));
    }
    let dict_count = r.u64()? as usize;
    let mut new_strings = Vec::with_capacity(dict_count.min(1 << 16));
    for _ in 0..dict_count {
        new_strings.push(read_str(&mut r)?);
    }
    let removed_count = r.u64()? as usize;
    let mut removed = Vec::with_capacity(removed_count.min(1 << 20));
    let mut prev = 0u32;
    for _ in 0..removed_count {
        let gap = r.u64()?;
        let ip = u64::from(prev)
            .checked_add(gap)
            .filter(|&v| v <= u64::from(u32::MAX))
            .ok_or_else(|| invalid("removed ip gap overflows"))? as u32;
        removed.push(ip);
        prev = ip;
    }
    let upsert_count = r.u64()? as usize;
    let mut upserts = Vec::with_capacity(upsert_count.min(1 << 20));
    let mut prev = 0u32;
    for _ in 0..upsert_count {
        let o = decode_record(&mut r, prev, t_ms)?;
        prev = o.ip;
        upserts.push(o);
    }
    if r.remaining() != 0 {
        return Err(invalid("trailing bytes after segment payload"));
    }
    Ok(Segment {
        seq,
        t_ms,
        kind,
        label,
        meta,
        new_strings,
        diff: SnapshotDiff { removed, upserts },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Observation;

    fn sample() -> Segment {
        Segment {
            seq: 3,
            t_ms: 1_814_400_000,
            kind: Kind::Delta,
            label: "week-3".into(),
            meta: vec![("truth".into(), "1234".into())],
            new_strings: vec!["US".into(), "dyn".into()],
            diff: SnapshotDiff {
                removed: vec![10, 600, 70_000],
                upserts: vec![
                    Observation::at(5, 0, 1_814_400_100),
                    Observation::at(900, 5, 1_814_400_200),
                ],
            },
        }
    }

    #[test]
    fn roundtrip() {
        let seg = sample();
        assert_eq!(decode(&encode(&seg)).unwrap(), seg);
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bitflip_detected() {
        let mut bytes = encode(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = encode(&sample());
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }
}
