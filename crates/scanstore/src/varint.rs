//! LEB128 varints and zigzag signed encoding.

use std::io;

/// Appends `v` as an unsigned LEB128 varint.
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` zigzag-mapped (small magnitudes stay small).
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// A cursor over encoded bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn truncated() -> io::Error {
        io::Error::new(io::ErrorKind::UnexpectedEof, "truncated record")
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> io::Result<u8> {
        let b = *self.buf.get(self.pos).ok_or_else(Self::truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Self::truncated());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads an unsigned varint.
    pub fn u64(&mut self) -> io::Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "varint overflows u64",
                ));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "varint too long",
                ));
            }
        }
    }

    /// Reads a zigzag varint.
    pub fn i64(&mut self) -> io::Result<i64> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads a varint and narrows to u32.
    pub fn u32(&mut self) -> io::Result<u32> {
        let v = self.u64()?;
        u32::try_from(v)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "value exceeds u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64() {
        let samples = [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &s in &samples {
            put_u64(&mut buf, s);
        }
        let mut r = Reader::new(&buf);
        for &s in &samples {
            assert_eq!(r.u64().unwrap(), s);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_i64() {
        let samples = [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX];
        let mut buf = Vec::new();
        for &s in &samples {
            put_i64(&mut buf, s);
        }
        let mut r = Reader::new(&buf);
        for &s in &samples {
            assert_eq!(r.i64().unwrap(), s);
        }
    }

    #[test]
    fn truncation_is_an_error() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 1 << 40);
        buf.pop();
        assert!(Reader::new(&buf).u64().is_err());
    }
}
