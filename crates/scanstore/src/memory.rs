//! In-memory store: the zero-persistence counterpart to
//! [`CampaignStore`](crate::CampaignStore). Campaigns stream into it
//! through the same sink traits, and report code reads it through the
//! same [`SnapshotSource`] — which is what makes the store-vs-scratch
//! equivalence tests byte-for-byte.

use crate::record::Observation;
use crate::sink::{ObservationSink, SnapshotSink};
use crate::source::{Snapshot, SnapshotSource};
use std::collections::HashMap;
use std::io;

/// Sorts pending observations by IP, keeping the first occurrence of
/// each duplicate IP (first-response-wins).
pub(crate) fn seal_pending(pending: &mut Vec<Observation>) -> Vec<Observation> {
    let mut records = std::mem::take(pending);
    records.sort_by_key(|o| o.ip);
    records.dedup_by_key(|o| o.ip);
    records
}

/// An in-memory snapshot sequence with interned strings.
#[derive(Debug, Default)]
pub struct MemoryStore {
    strings: Vec<String>,
    ids: HashMap<String, u32>,
    pending: Vec<Observation>,
    snapshots: Vec<Snapshot>,
}

impl MemoryStore {
    /// An empty store; string id 0 is reserved for "absent".
    pub fn new() -> MemoryStore {
        MemoryStore {
            strings: vec![String::new()],
            ids: HashMap::new(),
            pending: Vec::new(),
            snapshots: Vec::new(),
        }
    }

    /// All committed snapshots, in commit order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }
}

impl ObservationSink for MemoryStore {
    fn observe(&mut self, obs: Observation) {
        self.pending.push(obs);
    }

    fn intern(&mut self, s: &str) -> u32 {
        if s.is_empty() {
            return 0;
        }
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.ids.insert(s.to_string(), id);
        id
    }
}

impl SnapshotSink for MemoryStore {
    fn commit(&mut self, label: &str, t_ms: u64, meta: &[(String, String)]) -> io::Result<u32> {
        let seq = self.snapshots.len() as u32;
        let records = seal_pending(&mut self.pending);
        let reg = telemetry::global();
        reg.counter_with("scanstore.segments_written", &[("backend", "memory")])
            .inc();
        reg.counter_with("scanstore.records_committed", &[("backend", "memory")])
            .add(records.len() as u64);
        self.snapshots.push(Snapshot {
            seq,
            label: label.to_string(),
            t_ms,
            meta: meta.to_vec(),
            records,
        });
        Ok(seq)
    }
}

impl SnapshotSource for MemoryStore {
    fn snapshot_count(&self) -> u32 {
        self.snapshots.len() as u32
    }

    fn string(&self, id: u32) -> &str {
        self.strings
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    fn snapshot(&self, seq: u32) -> io::Result<Snapshot> {
        self.snapshots
            .get(seq as usize)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no snapshot {seq}")))
    }

    fn for_each_snapshot(&self, f: &mut dyn FnMut(&Snapshot) -> io::Result<()>) -> io::Result<()> {
        for snap in &self.snapshots {
            f(snap)?;
        }
        Ok(())
    }

    fn find_label(&self, label: &str) -> Option<u32> {
        self.snapshots
            .iter()
            .position(|s| s.label == label)
            .map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_zero_is_absent() {
        let mut store = MemoryStore::new();
        assert_eq!(store.intern(""), 0);
        let us = store.intern("US");
        let de = store.intern("DE");
        assert_ne!(us, de);
        assert_eq!(store.intern("US"), us);
        assert_eq!(store.string(us), "US");
        assert_eq!(store.string(0), "");
        assert_eq!(store.string(999), "");
    }

    #[test]
    fn commit_sorts_and_first_response_wins() {
        let mut store = MemoryStore::new();
        store.observe(Observation::at(9, 0, 10));
        store.observe(Observation::at(3, 5, 10));
        store.observe(Observation::at(9, 2, 11)); // duplicate, loses
        let seq = store.commit("week-0", 10, &[]).unwrap();
        assert_eq!(seq, 0);
        let snap = store.snapshot(0).unwrap();
        assert_eq!(snap.records.len(), 2);
        assert_eq!(snap.records[0].ip, 3);
        assert_eq!(snap.records[1].ip, 9);
        assert_eq!(snap.records[1].rcode, 0);
    }
}
