//! The observation record and its compact binary encoding.
//!
//! Records within a snapshot are sorted by IP and encoded with
//! gap-coded addresses plus varint fields; consecutive snapshots are
//! front-coded as deltas (removed IPs + upserted records), so a stable
//! population costs a few bytes per week regardless of fleet size.

use crate::varint::{put_i64, put_u64, Reader};
use serde::{Deserialize, Serialize};
use std::io;

/// Bit flags carried by every observation.
pub mod flags {
    /// The response's UDP source differed from the probed target
    /// (DNS proxy / multi-homed host).
    pub const PROXY: u8 = 1 << 0;
    /// At least one TCP service answered the banner probe.
    pub const TCP_RESPONSIVE: u8 = 1 << 1;
    /// CHAOS outcome occupies bits 2–3 (see [`chaos_outcome`]).
    pub const CHAOS_SHIFT: u8 = 2;
    /// Mask for the CHAOS outcome bits.
    pub const CHAOS_MASK: u8 = 0b11 << CHAOS_SHIFT;

    /// No CHAOS response.
    pub const CHAOS_SILENT: u8 = 0;
    /// CHAOS queries answered with error rcodes.
    pub const CHAOS_ERRORS: u8 = 1;
    /// NOERROR but no version text.
    pub const CHAOS_EMPTY: u8 = 2;
    /// A version string was returned (interned in `software`).
    pub const CHAOS_VERSION: u8 = 3;

    /// Extracts the CHAOS outcome code from a flags byte.
    pub fn chaos_outcome(flags: u8) -> u8 {
        (flags & CHAOS_MASK) >> CHAOS_SHIFT
    }

    /// Builds a flags byte with the given CHAOS outcome.
    pub fn with_chaos(flags: u8, outcome: u8) -> u8 {
        (flags & !CHAOS_MASK) | ((outcome << CHAOS_SHIFT) & CHAOS_MASK)
    }
}

/// One per-host observation within a snapshot. String-valued fields
/// (software banner, device token, country, rDNS token) are interned
/// ids into the campaign's string table; `0` means absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Observation {
    /// Probed IPv4 address as a big-endian integer.
    pub ip: u32,
    /// DNS response code (`dnswire::Rcode::to_u8` encoding).
    pub rcode: u8,
    /// See [`flags`].
    pub flags: u8,
    /// Interned software/version string (CHAOS answer), 0 = none.
    pub software: u32,
    /// Interned device token, 0 = none.
    pub device: u32,
    /// Interned ISO 3166 country code, 0 = none.
    pub country: u32,
    /// Origin AS number of the probed address, 0 = unknown. Carried
    /// directly (not interned) so AS-scoped queries need no string
    /// table round-trip.
    pub asn: u32,
    /// Interned rDNS token (`dyn` / `static`), 0 = none.
    pub rdns: u32,
    /// FNV-1a hash of the TCP banner corpus, 0 = none.
    pub banner_hash: u64,
    /// Campaign-defined scalar payload, 0 = none. Cache-snooping
    /// snapshots use it to carry the per-(TLD, round) sample (see
    /// `scanner::campaign::snoop`); other campaigns leave it 0.
    pub value: u64,
    /// When this host was first observed (sim milliseconds).
    pub first_seen_ms: u64,
    /// When this host was last observed (sim milliseconds).
    pub last_seen_ms: u64,
}

impl Observation {
    /// Convenience constructor for an address-only observation.
    pub fn at(ip: u32, rcode: u8, now_ms: u64) -> Observation {
        Observation {
            ip,
            rcode,
            first_seen_ms: now_ms,
            last_seen_ms: now_ms,
            ..Observation::default()
        }
    }

    /// The probed address as `Ipv4Addr`.
    pub fn ipv4(&self) -> std::net::Ipv4Addr {
        std::net::Ipv4Addr::from(self.ip)
    }
}

/// FNV-1a hash used for banner corpora.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes one record; `prev_ip` gap-codes the address and `base_ms`
/// delta-codes the timestamps.
pub fn encode_record(out: &mut Vec<u8>, o: &Observation, prev_ip: u32, base_ms: u64) {
    put_u64(out, u64::from(o.ip) - u64::from(prev_ip));
    out.push(o.rcode);
    out.push(o.flags);
    put_u64(out, u64::from(o.software));
    put_u64(out, u64::from(o.device));
    put_u64(out, u64::from(o.country));
    put_u64(out, u64::from(o.asn));
    put_u64(out, u64::from(o.rdns));
    put_u64(out, o.banner_hash);
    put_u64(out, o.value);
    put_i64(out, o.first_seen_ms as i64 - base_ms as i64);
    put_i64(out, o.last_seen_ms as i64 - o.first_seen_ms as i64);
}

/// Decodes one record written by [`encode_record`].
pub fn decode_record(r: &mut Reader<'_>, prev_ip: u32, base_ms: u64) -> io::Result<Observation> {
    let gap = r.u64()?;
    let ip = u64::from(prev_ip)
        .checked_add(gap)
        .filter(|&v| v <= u64::from(u32::MAX))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "ip gap overflows"))?
        as u32;
    let rcode = r.u8()?;
    let flags = r.u8()?;
    let software = r.u32()?;
    let device = r.u32()?;
    let country = r.u32()?;
    let asn = r.u32()?;
    let rdns = r.u32()?;
    let banner_hash = r.u64()?;
    let value = r.u64()?;
    let first_seen_ms = (base_ms as i64 + r.i64()?) as u64;
    let last_seen_ms = (first_seen_ms as i64 + r.i64()?) as u64;
    Ok(Observation {
        ip,
        rcode,
        flags,
        software,
        device,
        country,
        asn,
        rdns,
        banner_hash,
        value,
        first_seen_ms,
        last_seen_ms,
    })
}

/// The delta between two consecutive snapshots: IPs that disappeared
/// plus records that were added or changed. Records present in the
/// previous snapshot and untouched are carried implicitly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotDiff {
    /// IPs present in the previous snapshot but not this one (sorted).
    pub removed: Vec<u32>,
    /// Records new in, or changed since, the previous snapshot
    /// (sorted by IP).
    pub upserts: Vec<Observation>,
}

impl SnapshotDiff {
    /// Computes the delta from `prev` to `next` (both sorted by IP,
    /// unique per IP).
    pub fn between(prev: &[Observation], next: &[Observation]) -> SnapshotDiff {
        let mut diff = SnapshotDiff::default();
        let (mut i, mut j) = (0usize, 0usize);
        while i < prev.len() || j < next.len() {
            match (prev.get(i), next.get(j)) {
                (Some(p), Some(n)) if p.ip == n.ip => {
                    if p != n {
                        diff.upserts.push(*n);
                    }
                    i += 1;
                    j += 1;
                }
                (Some(p), Some(n)) if p.ip < n.ip => {
                    diff.removed.push(p.ip);
                    i += 1;
                }
                (Some(_), Some(n)) => {
                    diff.upserts.push(*n);
                    j += 1;
                }
                (Some(p), None) => {
                    diff.removed.push(p.ip);
                    i += 1;
                }
                (None, Some(n)) => {
                    diff.upserts.push(*n);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        diff
    }

    /// Applies this delta to `prev`, returning the next snapshot
    /// (sorted by IP).
    pub fn apply(&self, prev: &[Observation]) -> Vec<Observation> {
        let mut out = Vec::with_capacity(prev.len() + self.upserts.len());
        let mut removed = self.removed.iter().peekable();
        let mut upserts = self.upserts.iter().peekable();
        for p in prev {
            while removed.next_if(|&&ip| ip < p.ip).is_some() {}
            let dropped = removed.next_if(|&&ip| ip == p.ip).is_some();
            while let Some(u) = upserts.next_if(|u| u.ip < p.ip) {
                out.push(*u);
            }
            match upserts.next_if(|u| u.ip == p.ip) {
                Some(u) => out.push(*u),
                None if !dropped => out.push(*p),
                None => {}
            }
        }
        out.extend(upserts.copied());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(ip: u32, rcode: u8) -> Observation {
        Observation::at(ip, rcode, 1_000)
    }

    #[test]
    fn record_roundtrip() {
        let o = Observation {
            ip: 0x0A00_0001,
            rcode: 5,
            flags: flags::PROXY,
            software: 3,
            device: 0,
            country: 7,
            asn: 64512,
            rdns: 1,
            banner_hash: 0xdead_beef,
            value: (2 << 32) | 86_400,
            first_seen_ms: 500,
            last_seen_ms: 2_000,
        };
        let mut buf = Vec::new();
        encode_record(&mut buf, &o, 0, 1_000);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_record(&mut r, 0, 1_000).unwrap(), o);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn diff_roundtrip() {
        let prev = vec![obs(1, 0), obs(5, 0), obs(9, 5)];
        let next = vec![obs(1, 0), obs(6, 0), obs(9, 0)];
        let d = SnapshotDiff::between(&prev, &next);
        assert_eq!(d.removed, vec![5]);
        assert_eq!(d.upserts.len(), 2); // 6 added, 9 changed
        assert_eq!(d.apply(&prev), next);
    }

    #[test]
    fn diff_of_identical_snapshots_is_empty() {
        let a = vec![obs(1, 0), obs(2, 0)];
        let d = SnapshotDiff::between(&a, &a);
        assert!(d.removed.is_empty() && d.upserts.is_empty());
        assert_eq!(d.apply(&a), a);
    }
}
