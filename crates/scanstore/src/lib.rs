//! scanstore: a persistent, delta-encoded snapshot store with
//! checkpoint/resume for scan campaigns.
//!
//! A campaign (weekly enumeration, churn cohort tracking, CHAOS and
//! banner sweeps) streams [`Observation`]s into an
//! [`ObservationSink`] and seals each scan round with
//! [`SnapshotSink::commit`]. Two sinks are provided:
//!
//! * [`MemoryStore`] — keeps snapshots in memory; the default when no
//!   `--store` directory is given.
//! * [`CampaignStore`] — appends each snapshot as a CRC-checked,
//!   delta-encoded segment file and commits it durably with an
//!   atomic manifest rename. Reopening a store after a crash resumes
//!   from the last committed segment; torn or corrupted segments roll
//!   the checkpoint back to the longest valid prefix.
//!
//! Report code reads either store through [`SnapshotSource`] —
//! snapshot iterators, adjacent-snapshot diff cursors, and
//! [`cohort_survival`] tracking — so figures and tables derived from
//! a reopened store are byte-for-byte identical to a from-scratch run
//! over the same snapshots.

pub mod crc32;
pub mod memory;
pub mod record;
pub mod recorder;
pub mod segment;
pub mod sink;
pub mod source;
pub mod store;
pub mod varint;
pub mod view;

pub use memory::MemoryStore;
pub use record::{flags, fnv1a, Observation, SnapshotDiff};
pub use recorder::{read_stream, RecorderStream, StoredRecord};
pub use sink::{NullSink, ObservationSink, SnapshotSink};
pub use source::{cohort_survival, Snapshot, SnapshotSource};
pub use store::{CampaignStore, SegmentEntry, StoreStats};
pub use view::{AsnSeries, IndexEntry, ReadIndex, StoreView};
