//! Persistence for the telemetry flight recorder: an append-only
//! stream of CRC-checked segments holding [`ProbeRecord`]s.
//!
//! # Layout
//!
//! ```text
//! file  := segment*
//! segment := magic "GWRS" | payload_len u32 LE | payload | crc32 u32 LE
//! payload := n_strings varint | (len varint, utf8 bytes)*   string table
//!          | n_records varint | record*
//! record := seq | t_ms | kind u8 | campaign_idx | ip | asn
//!         | attempt | value | reason_idx                    (all varints)
//! ```
//!
//! Campaign names and drop reasons are interned per segment, so each
//! record costs a handful of bytes. Like the snapshot segments, the
//! stream tolerates a torn tail: [`read_stream`] returns every record
//! of the longest valid prefix and ignores a trailing partial or
//! corrupt segment. Records carry only deterministic fields, so two
//! seeded runs that drain the recorder at the same points write
//! byte-identical streams.

use crate::crc32::crc32;
use crate::varint::{put_u64, Reader};
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use telemetry::recorder::{ProbeRecord, RecordKind};

const MAGIC: &[u8; 4] = b"GWRS";

/// A [`ProbeRecord`] read back from disk (strings are owned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredRecord {
    /// Global sequence number in simulation order.
    pub seq: u64,
    /// Simulated time in milliseconds.
    pub t_ms: u64,
    /// What happened.
    pub kind: RecordKind,
    /// Owning campaign.
    pub campaign: String,
    /// Target resolver (`u32::from(Ipv4Addr)`), 0 for campaign-wide.
    pub ip: u32,
    /// Target's AS when known, else 0.
    pub asn: u32,
    /// 1-based attempt number.
    pub attempt: u32,
    /// Kind-specific value (wait ms / rcode / attempts spent).
    pub value: u64,
    /// Drop reason, empty for non-drop records.
    pub reason: String,
}

/// Appends recorder drains as self-contained segments.
pub struct RecorderStream {
    file: File,
    path: PathBuf,
    segments: u64,
    records: u64,
}

impl RecorderStream {
    /// Creates (truncating) a recorder stream at `path`.
    pub fn create(path: &Path) -> io::Result<RecorderStream> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(RecorderStream {
            file,
            path: path.to_path_buf(),
            segments: 0,
            records: 0,
        })
    }

    /// The stream's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one segment holding `records`. Empty drains are a no-op
    /// (no empty segments on disk).
    pub fn append(&mut self, records: &[ProbeRecord]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        // Intern campaign names and drop reasons, in first-use order.
        let mut strings: Vec<&str> = Vec::new();
        let idx_of = |strings: &mut Vec<&str>, s: &'static str| -> u64 {
            match strings.iter().position(|&t| t == s) {
                Some(i) => i as u64,
                None => {
                    strings.push(s);
                    (strings.len() - 1) as u64
                }
            }
        };
        let mut body = Vec::with_capacity(records.len() * 12);
        let mut recs = Vec::with_capacity(records.len() * 10);
        for r in records {
            let c = idx_of(&mut strings, r.campaign);
            let reason = idx_of(&mut strings, r.reason);
            put_u64(&mut recs, r.seq);
            put_u64(&mut recs, r.t_ms);
            recs.push(r.kind.to_u8());
            put_u64(&mut recs, c);
            put_u64(&mut recs, r.ip as u64);
            put_u64(&mut recs, r.asn as u64);
            put_u64(&mut recs, r.attempt as u64);
            put_u64(&mut recs, r.value);
            put_u64(&mut recs, reason);
        }
        put_u64(&mut body, strings.len() as u64);
        for s in &strings {
            put_u64(&mut body, s.len() as u64);
            body.extend_from_slice(s.as_bytes());
        }
        put_u64(&mut body, records.len() as u64);
        body.extend_from_slice(&recs);

        let mut frame = Vec::with_capacity(body.len() + 12);
        frame.extend_from_slice(MAGIC);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        self.file.write_all(&frame)?;
        self.segments += 1;
        self.records += records.len() as u64;
        telemetry::counter("scanstore.recorder.segments").inc();
        telemetry::counter("scanstore.recorder.records").add(records.len() as u64);
        Ok(())
    }

    /// Flushes and syncs the stream.
    pub fn finish(mut self) -> io::Result<(u64, u64)> {
        self.file.flush()?;
        self.file.sync_all()?;
        Ok((self.segments, self.records))
    }
}

/// Reads every record of the longest valid segment prefix of `path`.
/// A torn or corrupt tail segment is ignored, matching the snapshot
/// store's recovery semantics.
pub fn read_stream(path: &Path) -> io::Result<Vec<StoredRecord>> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let Some(records) = decode_segment(&buf[pos..], &mut pos) else {
            break;
        };
        out.extend(records);
    }
    Ok(out)
}

/// Decodes one segment at the start of `buf`; advances `pos` past it
/// on success, returns `None` on a torn or corrupt frame.
fn decode_segment(buf: &[u8], pos: &mut usize) -> Option<Vec<StoredRecord>> {
    if buf.len() < 8 || &buf[..4] != MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
    let total = 8 + len + 4;
    if buf.len() < total {
        return None;
    }
    let body = &buf[8..8 + len];
    let stored_crc = u32::from_le_bytes(buf[8 + len..total].try_into().unwrap());
    if crc32(body) != stored_crc {
        return None;
    }
    let mut r = Reader::new(body);
    let decode = |r: &mut Reader| -> io::Result<Vec<StoredRecord>> {
        let n_strings = r.u64()? as usize;
        let mut strings = Vec::with_capacity(n_strings);
        for _ in 0..n_strings {
            let len = r.u64()? as usize;
            let s = std::str::from_utf8(r.bytes(len)?)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad utf8"))?;
            strings.push(s.to_string());
        }
        let n = r.u64()? as usize;
        let mut recs = Vec::with_capacity(n);
        for _ in 0..n {
            let seq = r.u64()?;
            let t_ms = r.u64()?;
            let kind = RecordKind::from_u8(r.u8()?)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad record kind"))?;
            let campaign = strings
                .get(r.u64()? as usize)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad string index"))?
                .clone();
            let ip = r.u32()?;
            let asn = r.u32()?;
            let attempt = r.u32()?;
            let value = r.u64()?;
            let reason = strings
                .get(r.u64()? as usize)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad string index"))?
                .clone();
            recs.push(StoredRecord {
                seq,
                t_ms,
                kind,
                campaign,
                ip,
                asn,
                attempt,
                value,
                reason,
            });
        }
        Ok(recs)
    };
    let recs = decode(&mut r).ok()?;
    *pos += total;
    Some(recs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, kind: RecordKind, ip: u32) -> ProbeRecord {
        ProbeRecord {
            seq,
            t_ms: 1000 + seq,
            kind,
            campaign: "churn",
            ip,
            asn: 65000,
            attempt: 1,
            value: 3,
            reason: if kind == RecordKind::Drop {
                "burst"
            } else {
                ""
            },
        }
    }

    #[test]
    fn roundtrips_across_multiple_segments() {
        let dir = std::env::temp_dir().join("gw_recorder_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.gwrs");
        let mut s = RecorderStream::create(&path).unwrap();
        s.append(&[rec(0, RecordKind::Attempt, 9), rec(1, RecordKind::Drop, 9)])
            .unwrap();
        s.append(&[]).unwrap(); // no-op
        s.append(&[rec(2, RecordKind::GaveUp, 9)]).unwrap();
        let (segs, n) = s.finish().unwrap();
        assert_eq!((segs, n), (2, 3));
        let back = read_stream(&path).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].campaign, "churn");
        assert_eq!(back[1].reason, "burst");
        assert_eq!(back[1].kind, RecordKind::Drop);
        assert_eq!(back[2].seq, 2);
        assert_eq!(back[2].kind, RecordKind::GaveUp);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = std::env::temp_dir().join("gw_recorder_torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.gwrs");
        let mut s = RecorderStream::create(&path).unwrap();
        s.append(&[rec(0, RecordKind::Attempt, 1)]).unwrap();
        s.append(&[rec(1, RecordKind::Response, 1)]).unwrap();
        s.finish().unwrap();
        // Tear the last segment's final byte off.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let back = read_stream(&path).unwrap();
        assert_eq!(back.len(), 1, "only the intact first segment survives");
        assert_eq!(back[0].seq, 0);
        // Corrupt the surviving segment's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_stream(&path).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
