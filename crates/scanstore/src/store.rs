//! The persistent campaign store.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/manifest.json   — committed-segment index, atomic-renamed
//! <dir>/seg-00000.gws   — snapshot 0 (full encoding)
//! <dir>/seg-00001.gws   — snapshot 1 (delta vs 0)
//! …
//! ```
//!
//! Commit protocol: the segment file is written to `*.tmp`, fsynced,
//! renamed into place, then the manifest is rewritten the same way.
//! A crash between the two leaves an orphan segment that the next
//! [`CampaignStore::open`] deletes — the checkpoint is whatever the
//! manifest says. A torn or corrupted segment inside the committed
//! prefix rolls the checkpoint back to the longest valid prefix and
//! counts a recovery event.

use crate::record::{Observation, SnapshotDiff};
use crate::segment::{self, Kind, Segment};
use crate::sink::{ObservationSink, SnapshotSink};
use crate::source::{Snapshot, SnapshotSource};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

const MANIFEST: &str = "manifest.json";
const MANIFEST_VERSION: u32 = 1;

/// Per-segment bookkeeping persisted in the manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentEntry {
    /// Sequence number (matches the segment header).
    pub seq: u32,
    /// File name within the store directory.
    pub file: String,
    /// Encoded size on disk, CRC included.
    pub bytes: u64,
    /// Upserted records in this segment.
    pub records: u64,
    /// Removed IPs in this segment.
    pub removed: u64,
    /// Size the same upserts would occupy as naive JSON lines.
    pub json_bytes: u64,
    /// Snapshot label.
    pub label: String,
    /// Snapshot timestamp.
    pub t_ms: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    committed: u32,
    recovery_events: u32,
    segments: Vec<SegmentEntry>,
}

impl Manifest {
    fn empty() -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            committed: 0,
            recovery_events: 0,
            segments: Vec::new(),
        }
    }
}

/// Store-level statistics surfaced in the `repro` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreStats {
    /// Committed segments.
    pub segments: u32,
    /// Records in the latest snapshot.
    pub live_records: u64,
    /// Total upserted records across all segments.
    pub upserts_total: u64,
    /// Total removed IPs across all segments.
    pub removed_total: u64,
    /// Bytes on disk across committed segments.
    pub bytes_written: u64,
    /// Bytes the same upserts would occupy as naive JSON lines.
    pub json_bytes_equiv: u64,
    /// `json_bytes_equiv / bytes_written` (0 when empty).
    pub compression_ratio: f64,
    /// Checkpoint rollbacks observed across the store's lifetime.
    pub recovery_events: u32,
    /// Set when `open` found committed segments to resume from.
    pub resumed_at: Option<u32>,
}

/// A validated, replayable segment held in memory after `open`.
#[derive(Debug)]
struct StoredSegment {
    label: String,
    t_ms: u64,
    meta: Vec<(String, String)>,
    diff: SnapshotDiff,
}

/// Append-only, delta-encoded, crash-safe snapshot store rooted at a
/// directory.
#[derive(Debug)]
pub struct CampaignStore {
    dir: PathBuf,
    manifest: Manifest,
    segments: Vec<StoredSegment>,
    strings: Vec<String>,
    ids: HashMap<String, u32>,
    new_strings: Vec<String>,
    current: Vec<Observation>,
    pending: Vec<Observation>,
    resumed_at: Option<u32>,
}

fn seg_file_name(seq: u32) -> String {
    format!("seg-{seq:05}.gws")
}

/// Durably writes `bytes` to `dir/name` via tmp + fsync + rename.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let dst = dir.join(name);
    fs::write(&tmp, bytes)?;
    let f = fs::File::open(&tmp)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, &dst)?;
    // Make the rename itself durable.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn json_line_bytes(records: &[Observation]) -> u64 {
    records
        .iter()
        .map(|o| {
            serde_json::to_string(o)
                .map(|s| s.len() as u64 + 1)
                .unwrap_or(0)
        })
        .sum()
}

impl CampaignStore {
    /// Opens (or creates) the store at `dir`, validating every
    /// committed segment. Corruption anywhere in the committed prefix
    /// rolls the checkpoint back to the longest valid prefix; orphan
    /// segments and temp files beyond the checkpoint are deleted.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<CampaignStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let (mut manifest, manifest_readable) = match fs::read(dir.join(MANIFEST)) {
            Ok(bytes) => match serde_json::from_slice::<Manifest>(&bytes) {
                Ok(m) if m.version == MANIFEST_VERSION => (m, true),
                _ => (Manifest::empty(), false),
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => (Manifest::empty(), true),
            Err(e) => return Err(e),
        };

        let mut store = CampaignStore {
            dir,
            manifest: Manifest::empty(),
            segments: Vec::new(),
            strings: vec![String::new()],
            ids: HashMap::new(),
            new_strings: Vec::new(),
            current: Vec::new(),
            pending: Vec::new(),
            resumed_at: None,
        };

        // Validate the committed prefix in order, rebuilding the string
        // table and the latest snapshot as we go.
        let crc_validations = telemetry::counter("scanstore.crc_validations");
        let mut valid = 0u32;
        for entry in manifest.segments.iter().take(manifest.committed as usize) {
            let ok = fs::read(store.dir.join(&entry.file))
                .ok()
                .and_then(|bytes| segment::decode(&bytes).ok())
                .filter(|seg| seg.seq == valid)
                .map(|seg| store.absorb(seg));
            match ok {
                Some(()) => {
                    valid += 1;
                    crc_validations.inc();
                }
                None => break,
            }
        }

        let mut recovered = !manifest_readable;
        if valid < manifest.committed {
            recovered = true;
        }
        manifest.committed = valid;
        manifest.segments.truncate(valid as usize);
        if recovered {
            manifest.recovery_events += 1;
            telemetry::counter("scanstore.recovery_rollbacks").inc();
            telemetry::warn(
                "scanstore.recover",
                "rolled checkpoint back to longest valid prefix",
                &[("committed", valid.into())],
                None,
            );
        }

        // Delete anything past the checkpoint: orphan segments from a
        // crash mid-commit, stray temp files, segments beyond a rollback.
        for dirent in fs::read_dir(&store.dir)? {
            let dirent = dirent?;
            let name = dirent.file_name().to_string_lossy().into_owned();
            let keep = name == MANIFEST || manifest.segments.iter().any(|e| e.file == name);
            if !keep && (name.starts_with("seg-") || name.ends_with(".tmp")) {
                let _ = fs::remove_file(dirent.path());
            }
        }

        if recovered || !manifest_readable {
            let bytes = serde_json::to_vec(&manifest)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            write_atomic(&store.dir, MANIFEST, &bytes)?;
        }

        store.resumed_at = if valid > 0 { Some(valid) } else { None };
        store.manifest = manifest;
        Ok(store)
    }

    /// Folds a validated segment into the in-memory replay state.
    fn absorb(&mut self, seg: Segment) {
        for s in &seg.new_strings {
            let id = self.strings.len() as u32;
            self.strings.push(s.clone());
            self.ids.insert(s.clone(), id);
        }
        self.current = seg.diff.apply(&self.current);
        self.segments.push(StoredSegment {
            label: seg.label,
            t_ms: seg.t_ms,
            meta: seg.meta,
            diff: seg.diff,
        });
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of snapshots the campaign may skip on resume (equals the
    /// committed-segment count; `None` when the store was empty).
    pub fn resumed_at(&self) -> Option<u32> {
        self.resumed_at
    }

    /// Current store statistics.
    pub fn stats(&self) -> StoreStats {
        let bytes_written: u64 = self.manifest.segments.iter().map(|e| e.bytes).sum();
        let json_bytes: u64 = self.manifest.segments.iter().map(|e| e.json_bytes).sum();
        StoreStats {
            segments: self.manifest.committed,
            live_records: self.current.len() as u64,
            upserts_total: self.manifest.segments.iter().map(|e| e.records).sum(),
            removed_total: self.manifest.segments.iter().map(|e| e.removed).sum(),
            bytes_written,
            json_bytes_equiv: json_bytes,
            compression_ratio: if bytes_written > 0 {
                json_bytes as f64 / bytes_written as f64
            } else {
                0.0
            },
            recovery_events: self.manifest.recovery_events,
            resumed_at: self.resumed_at,
        }
    }
}

impl ObservationSink for CampaignStore {
    fn observe(&mut self, obs: Observation) {
        self.pending.push(obs);
    }

    fn intern(&mut self, s: &str) -> u32 {
        if s.is_empty() {
            return 0;
        }
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.ids.insert(s.to_string(), id);
        self.new_strings.push(s.to_string());
        id
    }
}

impl SnapshotSink for CampaignStore {
    fn commit(&mut self, label: &str, t_ms: u64, meta: &[(String, String)]) -> io::Result<u32> {
        let seq = self.manifest.committed;
        let records = crate::memory::seal_pending(&mut self.pending);
        let diff = SnapshotDiff::between(&self.current, &records);
        let json_bytes = json_line_bytes(&diff.upserts);
        let seg = Segment {
            seq,
            t_ms,
            kind: if seq == 0 { Kind::Full } else { Kind::Delta },
            label: label.to_string(),
            meta: meta.to_vec(),
            new_strings: std::mem::take(&mut self.new_strings),
            diff,
        };
        let bytes = segment::encode(&seg);
        let file = seg_file_name(seq);
        write_atomic(&self.dir, &file, &bytes)?;

        self.manifest.segments.push(SegmentEntry {
            seq,
            file,
            bytes: bytes.len() as u64,
            records: seg.diff.upserts.len() as u64,
            removed: seg.diff.removed.len() as u64,
            json_bytes,
            label: label.to_string(),
            t_ms,
        });
        self.manifest.committed = seq + 1;
        let manifest_bytes = serde_json::to_vec(&self.manifest)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        write_atomic(&self.dir, MANIFEST, &manifest_bytes)?;

        let reg = telemetry::global();
        reg.counter_with("scanstore.segments_written", &[("backend", "disk")])
            .inc();
        reg.counter("scanstore.bytes_written")
            .add(bytes.len() as u64);
        reg.counter("scanstore.json_bytes_equiv").add(json_bytes);
        reg.counter_with("scanstore.records_committed", &[("backend", "disk")])
            .add(seg.diff.upserts.len() as u64);
        let total_bytes: u64 = self.manifest.segments.iter().map(|e| e.bytes).sum();
        let total_json: u64 = self.manifest.segments.iter().map(|e| e.json_bytes).sum();
        if total_bytes > 0 {
            reg.gauge("scanstore.compression_ratio")
                .set(total_json as f64 / total_bytes as f64);
        }
        telemetry::debug(
            "scanstore.commit",
            "segment committed",
            &[
                ("label", label.into()),
                ("seq", seq.into()),
                ("bytes", bytes.len().into()),
                ("records", seg.diff.upserts.len().into()),
            ],
            Some(t_ms),
        );

        self.current = records;
        self.segments.push(StoredSegment {
            label: seg.label,
            t_ms: seg.t_ms,
            meta: seg.meta,
            diff: seg.diff,
        });
        Ok(seq)
    }
}

impl SnapshotSource for CampaignStore {
    fn snapshot_count(&self) -> u32 {
        self.manifest.committed
    }

    fn string(&self, id: u32) -> &str {
        self.strings
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    fn snapshot(&self, seq: u32) -> io::Result<Snapshot> {
        if seq >= self.snapshot_count() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no snapshot {seq}"),
            ));
        }
        let mut records = Vec::new();
        for stored in &self.segments[..=seq as usize] {
            records = stored.diff.apply(&records);
        }
        let stored = &self.segments[seq as usize];
        Ok(Snapshot {
            seq,
            label: stored.label.clone(),
            t_ms: stored.t_ms,
            meta: stored.meta.clone(),
            records,
        })
    }

    /// Single incremental replay over the stored deltas — each
    /// snapshot costs one `apply`, not a replay from scratch.
    fn for_each_snapshot(&self, f: &mut dyn FnMut(&Snapshot) -> io::Result<()>) -> io::Result<()> {
        let mut records: Vec<Observation> = Vec::new();
        for (seq, stored) in self.segments.iter().enumerate() {
            records = stored.diff.apply(&records);
            let snap = Snapshot {
                seq: seq as u32,
                label: stored.label.clone(),
                t_ms: stored.t_ms,
                meta: stored.meta.clone(),
                records,
            };
            f(&snap)?;
            records = snap.records;
        }
        Ok(())
    }

    /// Labels are indexed in memory after `open`; no replay needed.
    fn find_label(&self, label: &str) -> Option<u32> {
        self.segments
            .iter()
            .position(|s| s.label == label)
            .map(|i| i as u32)
    }

    /// Adjacent diffs are served straight from the stored delta ops —
    /// no snapshot materialization.
    fn diff(&self, seq: u32) -> io::Result<SnapshotDiff> {
        let next = seq
            .checked_add(1)
            .filter(|&n| n < self.snapshot_count())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("no diff from {seq}"))
            })?;
        Ok(self.segments[next as usize].diff.clone())
    }
}
