//! Read-only, concurrently shareable views over a committed
//! [`CampaignStore`](crate::CampaignStore) directory.
//!
//! [`CampaignStore::open`] is a *writer* open: it deletes orphan
//! segments and rewrites the manifest, which is unsafe while another
//! process is still committing to the same directory. [`StoreView`]
//! is the reader-side counterpart:
//!
//! * it never writes, renames, or deletes anything;
//! * a torn tail (manifest listing a segment whose file is missing,
//!   truncated, or corrupt — e.g. a writer crashed mid-commit) rolls
//!   the view back to the longest valid prefix *in memory only*;
//! * decoded segments are held behind [`Arc`], so cloning a view is
//!   cheap and [`StoreView::refresh`] after a new commit re-decodes
//!   only the new segments;
//! * every view generation carries a [`ReadIndex`] — a sorted,
//!   string-interned per-IP index plus per-AS presence series — built
//!   once per manifest generation so point lookups cost a binary
//!   search instead of a segment replay.
//!
//! Views implement [`SnapshotSource`], so every existing derivation
//! runs unchanged over a `StoreView`.

use crate::record::Observation;
use crate::segment::{self, Segment};
use crate::source::{Snapshot, SnapshotSource};
use crate::SnapshotDiff;
use serde::Deserialize;
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The slice of the manifest a reader needs. Deserialized leniently so
/// a view never fails on writer-side additions to the manifest schema.
#[derive(Debug, Clone, Deserialize)]
struct ManifestView {
    version: u32,
    committed: u32,
    segments: Vec<ManifestEntry>,
}

#[derive(Debug, Clone, Deserialize)]
struct ManifestEntry {
    seq: u32,
    file: String,
}

const MANIFEST: &str = "manifest.json";
const MANIFEST_VERSION: u32 = 1;

/// One decoded, immutable segment shared across view generations.
#[derive(Debug)]
struct ViewSegment {
    file: String,
    label: String,
    t_ms: u64,
    meta: Vec<(String, String)>,
    new_strings: Vec<String>,
    diff: SnapshotDiff,
}

/// Per-IP summary in the read-side index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// The probed address.
    pub ip: u32,
    /// The most recent observation of this IP (from the last snapshot
    /// that contained it).
    pub latest: Observation,
    /// First snapshot (seq) the IP appeared in.
    pub first_seq: u32,
    /// Last snapshot (seq) the IP appeared in.
    pub last_seq: u32,
    /// Number of snapshots the IP was present in.
    pub rounds: u32,
    /// Whether the IP is present in the latest snapshot.
    pub live: bool,
}

/// Per-AS presence and cohort-survival series across snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsnSeries {
    /// IPs of this AS present in each snapshot (one element per seq).
    pub present: Vec<u64>,
    /// Of the AS's snapshot-0 cohort, how many are still present in
    /// each snapshot (element 0 is the cohort size).
    pub survivors: Vec<u64>,
}

/// Immutable per-generation read index: sorted IP entries, label map,
/// per-AS series, per-snapshot sizes.
#[derive(Debug, Default)]
pub struct ReadIndex {
    entries: Vec<IndexEntry>,
    labels: Vec<(String, u32)>,
    asn_series: BTreeMap<u32, AsnSeries>,
    snapshot_sizes: Vec<u64>,
}

impl ReadIndex {
    /// Builds the index by replaying `segments` in commit order.
    fn build(segments: &[Arc<ViewSegment>]) -> ReadIndex {
        let last = segments.len().wrapping_sub(1) as u32;
        let mut entries: HashMap<u32, IndexEntry> = HashMap::new();
        let mut labels: Vec<(String, u32)> = Vec::new();
        let mut asn_series: BTreeMap<u32, AsnSeries> = BTreeMap::new();
        let mut snapshot_sizes = Vec::with_capacity(segments.len());
        // AS of each snapshot-0 IP, for the survival series.
        let mut cohort0: HashMap<u32, u32> = HashMap::new();
        let mut current: Vec<Observation> = Vec::new();
        for (seq, seg) in segments.iter().enumerate() {
            let seq = seq as u32;
            if !labels.iter().any(|(l, _)| *l == seg.label) {
                labels.push((seg.label.clone(), seq));
            }
            current = seg.diff.apply(&current);
            snapshot_sizes.push(current.len() as u64);
            if seq == 0 {
                for o in &current {
                    cohort0.insert(o.ip, o.asn);
                }
            }
            for o in &current {
                entries
                    .entry(o.ip)
                    .and_modify(|e| {
                        e.latest = *o;
                        e.last_seq = seq;
                        e.rounds += 1;
                    })
                    .or_insert_with(|| IndexEntry {
                        ip: o.ip,
                        latest: *o,
                        first_seq: seq,
                        last_seq: seq,
                        rounds: 1,
                        live: false,
                    });
                let series = asn_series.entry(o.asn).or_default();
                if series.present.len() <= seq as usize {
                    series.present.resize(seq as usize + 1, 0);
                }
                series.present[seq as usize] += 1;
                if let Some(&asn0) = cohort0.get(&o.ip) {
                    let series = asn_series.entry(asn0).or_default();
                    if series.survivors.len() <= seq as usize {
                        series.survivors.resize(seq as usize + 1, 0);
                    }
                    series.survivors[seq as usize] += 1;
                }
            }
        }
        // Pad every series to the full snapshot count so consumers can
        // zip them against labels without bounds juggling.
        for series in asn_series.values_mut() {
            series.present.resize(segments.len(), 0);
            series.survivors.resize(segments.len(), 0);
        }
        let mut entries: Vec<IndexEntry> = entries.into_values().collect();
        entries.sort_by_key(|e| e.ip);
        for e in &mut entries {
            e.live = e.last_seq == last;
        }
        ReadIndex {
            entries,
            labels,
            asn_series,
            snapshot_sizes,
        }
    }

    /// Point lookup by IP (binary search over the sorted entries).
    pub fn lookup(&self, ip: u32) -> Option<&IndexEntry> {
        self.entries
            .binary_search_by_key(&ip, |e| e.ip)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Every indexed IP, sorted ascending.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Presence/survival series for one AS, if it was ever observed.
    pub fn asn_series(&self, asn: u32) -> Option<&AsnSeries> {
        self.asn_series.get(&asn)
    }

    /// Every AS with at least one observation, ascending.
    pub fn asns(&self) -> impl Iterator<Item = u32> + '_ {
        self.asn_series.keys().copied()
    }

    /// `(label, seq)` of the first snapshot per distinct label.
    pub fn labels(&self) -> &[(String, u32)] {
        &self.labels
    }

    /// Records in each snapshot, by seq.
    pub fn snapshot_sizes(&self) -> &[u64] {
        &self.snapshot_sizes
    }
}

/// `(label, t_ms, meta)` of one committed snapshot segment.
pub type SegmentMeta<'a> = (&'a str, u64, &'a [(String, String)]);

/// A cheaply cloneable, read-only view of a campaign store directory.
///
/// All heavyweight state (decoded segments, string table, read index)
/// sits behind [`Arc`]s: clones share it, and concurrent readers on
/// other threads need no locking because a view is immutable.
#[derive(Debug, Clone)]
pub struct StoreView {
    dir: PathBuf,
    generation: u32,
    recovered: bool,
    segments: Vec<Arc<ViewSegment>>,
    strings: Arc<Vec<String>>,
    index: Arc<ReadIndex>,
}

fn read_manifest(dir: &Path) -> io::Result<Option<ManifestView>> {
    match fs::read(dir.join(MANIFEST)) {
        Ok(bytes) => match serde_json::from_slice::<ManifestView>(&bytes) {
            Ok(m) if m.version == MANIFEST_VERSION => Ok(Some(m)),
            // Unknown version or unparsable bytes: treat as empty
            // rather than failing the reader — the writer commits the
            // manifest atomically, so this is a foreign file, not a
            // torn write.
            _ => Ok(None),
        },
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Decodes the committed segment at `entry`, verifying its sequence
/// number. Any read or decode failure yields `None` (torn tail).
fn decode_entry(dir: &Path, entry: &ManifestEntry, want_seq: u32) -> Option<Arc<ViewSegment>> {
    let bytes = fs::read(dir.join(&entry.file)).ok()?;
    let seg: Segment = segment::decode(&bytes).ok()?;
    if seg.seq != want_seq || entry.seq != want_seq {
        return None;
    }
    telemetry::counter("scanstore.view.segments_decoded").inc();
    Some(Arc::new(ViewSegment {
        file: entry.file.clone(),
        label: seg.label,
        t_ms: seg.t_ms,
        meta: seg.meta,
        new_strings: seg.new_strings,
        diff: seg.diff,
    }))
}

fn string_table(segments: &[Arc<ViewSegment>]) -> Vec<String> {
    let mut strings = vec![String::new()];
    for seg in segments {
        strings.extend(seg.new_strings.iter().cloned());
    }
    strings
}

impl StoreView {
    /// Opens a read-only view of the store at `dir`.
    ///
    /// Unlike [`CampaignStore::open`](crate::CampaignStore::open), this
    /// never mutates the directory: a missing manifest yields an empty
    /// view (generation 0), and a torn tail — segments the manifest
    /// lists but that are missing, truncated, or corrupt because a
    /// writer is mid-commit or crashed — rolls the view back to the
    /// longest valid prefix in memory and sets [`StoreView::recovered`].
    pub fn open(dir: impl AsRef<Path>) -> io::Result<StoreView> {
        let dir = dir.as_ref().to_path_buf();
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("store directory {} does not exist", dir.display()),
            ));
        }
        let manifest = read_manifest(&dir)?;
        let mut segments: Vec<Arc<ViewSegment>> = Vec::new();
        let mut recovered = false;
        if let Some(m) = &manifest {
            for entry in m.segments.iter().take(m.committed as usize) {
                match decode_entry(&dir, entry, segments.len() as u32) {
                    Some(seg) => segments.push(seg),
                    None => {
                        recovered = true;
                        break;
                    }
                }
            }
            if segments.len() < m.committed as usize {
                recovered = true;
            }
        }
        if recovered {
            telemetry::counter("scanstore.view.rollbacks").inc();
        }
        telemetry::counter("scanstore.view.opens").inc();
        let strings = Arc::new(string_table(&segments));
        let index = Arc::new(ReadIndex::build(&segments));
        Ok(StoreView {
            dir,
            generation: segments.len() as u32,
            recovered,
            segments,
            strings,
            index,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Committed snapshots in this view (the manifest generation the
    /// view was built from, after any in-memory rollback).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Whether the open rolled back past a torn tail.
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// The per-generation read index.
    pub fn index(&self) -> &ReadIndex {
        &self.index
    }

    /// `(label, t_ms, meta)` of snapshot `seq`, without materializing
    /// its records.
    pub fn segment_meta(&self, seq: u32) -> Option<SegmentMeta<'_>> {
        self.segments
            .get(seq as usize)
            .map(|s| (s.label.as_str(), s.t_ms, s.meta.as_slice()))
    }

    /// Re-reads the manifest and returns a view of the latest
    /// committed generation.
    ///
    /// * unchanged manifest → a cheap clone (all `Arc`s shared);
    /// * new commits on top of our prefix → only the new segments are
    ///   decoded; the old prefix (and its decode cost) is reused;
    /// * anything else (rollback, rewritten files) → full reopen.
    pub fn refresh(&self) -> io::Result<StoreView> {
        let manifest = read_manifest(&self.dir)?;
        let m = match manifest {
            Some(m) => m,
            None => {
                // Store reset to empty underneath us.
                if self.generation == 0 {
                    return Ok(self.clone());
                }
                telemetry::counter_with("scanstore.view.refreshes", &[("kind", "reopen")]).inc();
                return StoreView::open(&self.dir);
            }
        };
        let committed = m.committed as usize;
        let prefix_matches = committed >= self.segments.len()
            && self
                .segments
                .iter()
                .zip(m.segments.iter())
                .all(|(have, want)| have.file == want.file);
        if !prefix_matches {
            telemetry::counter_with("scanstore.view.refreshes", &[("kind", "reopen")]).inc();
            return StoreView::open(&self.dir);
        }
        if committed == self.segments.len() {
            telemetry::counter_with("scanstore.view.refreshes", &[("kind", "noop")]).inc();
            return Ok(self.clone());
        }
        // Decode only the new tail; stop at a torn segment.
        let mut segments = self.segments.clone();
        let mut recovered = false;
        for entry in m.segments.iter().take(committed).skip(segments.len()) {
            match decode_entry(&self.dir, entry, segments.len() as u32) {
                Some(seg) => segments.push(seg),
                None => {
                    recovered = true;
                    break;
                }
            }
        }
        if recovered {
            telemetry::counter("scanstore.view.rollbacks").inc();
        }
        telemetry::counter_with("scanstore.view.refreshes", &[("kind", "incremental")]).inc();
        let strings = Arc::new(string_table(&segments));
        let index = Arc::new(ReadIndex::build(&segments));
        Ok(StoreView {
            dir: self.dir.clone(),
            generation: segments.len() as u32,
            recovered,
            segments,
            strings,
            index,
        })
    }
}

impl SnapshotSource for StoreView {
    fn snapshot_count(&self) -> u32 {
        self.generation
    }

    fn string(&self, id: u32) -> &str {
        self.strings
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    fn snapshot(&self, seq: u32) -> io::Result<Snapshot> {
        if seq >= self.generation {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no snapshot {seq}"),
            ));
        }
        let mut records = Vec::new();
        for stored in &self.segments[..=seq as usize] {
            records = stored.diff.apply(&records);
        }
        let stored = &self.segments[seq as usize];
        Ok(Snapshot {
            seq,
            label: stored.label.clone(),
            t_ms: stored.t_ms,
            meta: stored.meta.clone(),
            records,
        })
    }

    fn for_each_snapshot(&self, f: &mut dyn FnMut(&Snapshot) -> io::Result<()>) -> io::Result<()> {
        let mut records: Vec<Observation> = Vec::new();
        for (seq, stored) in self.segments.iter().enumerate() {
            records = stored.diff.apply(&records);
            let snap = Snapshot {
                seq: seq as u32,
                label: stored.label.clone(),
                t_ms: stored.t_ms,
                meta: stored.meta.clone(),
                records,
            };
            f(&snap)?;
            records = snap.records;
        }
        Ok(())
    }

    fn find_label(&self, label: &str) -> Option<u32> {
        self.index
            .labels
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, seq)| seq)
    }

    fn diff(&self, seq: u32) -> io::Result<SnapshotDiff> {
        let next = seq
            .checked_add(1)
            .filter(|&n| n < self.generation)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("no diff from {seq}"))
            })?;
        Ok(self.segments[next as usize].diff.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{ObservationSink, SnapshotSink};
    use crate::CampaignStore;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!("gw-view-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn obs(ip: u32, rcode: u8, asn: u32, t: u64) -> Observation {
        Observation {
            asn,
            ..Observation::at(ip, rcode, t)
        }
    }

    fn commit_week(store: &mut CampaignStore, week: u32, ips: &[(u32, u32)]) {
        for &(ip, asn) in ips {
            store.observe(obs(ip, 0, asn, 1_000 + u64::from(week)));
        }
        store
            .commit(&format!("week-{week}"), 1_000 + u64::from(week), &[])
            .unwrap();
    }

    #[test]
    fn view_matches_writer_store() {
        let tmp = TempDir::new("match");
        let mut store = CampaignStore::open(&tmp.0).unwrap();
        commit_week(&mut store, 0, &[(10, 1), (20, 2), (30, 1)]);
        commit_week(&mut store, 1, &[(10, 1), (30, 1), (40, 3)]);

        let view = StoreView::open(&tmp.0).unwrap();
        assert_eq!(view.generation(), 2);
        assert!(!view.recovered());
        assert_eq!(view.snapshot_count(), store.snapshot_count());
        for seq in 0..2 {
            assert_eq!(view.snapshot(seq).unwrap(), store.snapshot(seq).unwrap());
        }
        assert_eq!(view.find_label("week-1"), Some(1));
        assert_eq!(view.find_label("nope"), None);
    }

    #[test]
    fn index_summarizes_presence_and_churn() {
        let tmp = TempDir::new("index");
        let mut store = CampaignStore::open(&tmp.0).unwrap();
        commit_week(&mut store, 0, &[(10, 1), (20, 2), (30, 1)]);
        commit_week(&mut store, 1, &[(10, 1), (30, 1), (40, 3)]);
        commit_week(&mut store, 2, &[(10, 1), (40, 3)]);

        let view = StoreView::open(&tmp.0).unwrap();
        let idx = view.index();
        let e10 = idx.lookup(10).unwrap();
        assert_eq!((e10.first_seq, e10.last_seq, e10.rounds), (0, 2, 3));
        assert!(e10.live);
        let e20 = idx.lookup(20).unwrap();
        assert_eq!((e20.first_seq, e20.last_seq, e20.rounds), (0, 0, 1));
        assert!(!e20.live);
        assert!(idx.lookup(99).is_none());

        let as1 = idx.asn_series(1).unwrap();
        assert_eq!(as1.present, vec![2, 2, 1]);
        assert_eq!(as1.survivors, vec![2, 2, 1]);
        let as3 = idx.asn_series(3).unwrap();
        assert_eq!(as3.present, vec![0, 1, 1]);
        assert_eq!(as3.survivors, vec![0, 0, 0], "AS3 joined after the cohort");
        assert_eq!(idx.snapshot_sizes(), &[3, 3, 2]);
    }

    #[test]
    fn open_is_torn_tail_safe_and_nondestructive() {
        let tmp = TempDir::new("torn");
        let mut store = CampaignStore::open(&tmp.0).unwrap();
        commit_week(&mut store, 0, &[(10, 1)]);
        commit_week(&mut store, 1, &[(10, 1), (20, 2)]);
        // Simulate a writer crash: manifest points at a truncated tail.
        let seg1 = tmp.0.join("seg-00001.gws");
        let bytes = fs::read(&seg1).unwrap();
        fs::write(&seg1, &bytes[..bytes.len() / 2]).unwrap();

        let view = StoreView::open(&tmp.0).unwrap();
        assert_eq!(view.generation(), 1, "rolls back past the torn tail");
        assert!(view.recovered());
        // Read-only: the torn file must still be there for the writer.
        assert_eq!(fs::read(&seg1).unwrap().len(), bytes.len() / 2);
    }

    #[test]
    fn refresh_is_incremental_and_reuses_segments() {
        let tmp = TempDir::new("refresh");
        let mut store = CampaignStore::open(&tmp.0).unwrap();
        commit_week(&mut store, 0, &[(10, 1)]);

        let v1 = StoreView::open(&tmp.0).unwrap();
        let same = v1.refresh().unwrap();
        assert_eq!(same.generation(), 1);
        assert!(Arc::ptr_eq(&v1.segments[0], &same.segments[0]));

        commit_week(&mut store, 1, &[(10, 1), (20, 2)]);
        let v2 = v1.refresh().unwrap();
        assert_eq!(v2.generation(), 2);
        assert!(
            Arc::ptr_eq(&v1.segments[0], &v2.segments[0]),
            "prefix segments are shared, not re-decoded"
        );
        assert_eq!(v2.snapshot(1).unwrap(), store.snapshot(1).unwrap());
        // The stale view still serves its own generation.
        assert_eq!(v1.snapshot_count(), 1);
        assert_eq!(v1.snapshot(0).unwrap().records.len(), 1);
    }

    #[test]
    fn empty_and_missing_stores() {
        let tmp = TempDir::new("empty");
        let view = StoreView::open(&tmp.0).unwrap();
        assert_eq!(view.generation(), 0);
        assert!(view.snapshot(0).is_err());
        assert!(StoreView::open(tmp.0.join("nope")).is_err());
    }
}
