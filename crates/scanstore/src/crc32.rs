//! CRC-32 (IEEE 802.3 polynomial), table-based.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn flips_on_corruption() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
