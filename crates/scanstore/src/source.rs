//! Typed read API over committed snapshots.
//!
//! Report code consumes [`SnapshotSource`] instead of in-memory
//! vectors, so the same derivations (Fig. 1 weekly counts, Table 1/2
//! flux, Fig. 2 churn) run identically over a live in-memory campaign
//! or a reopened on-disk store.

use crate::record::{Observation, SnapshotDiff};
use std::io;

/// One materialized snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Sequence number (0-based commit order).
    pub seq: u32,
    /// Label the campaign committed under (`week-3`, `cohort`, …).
    pub label: String,
    /// Snapshot timestamp (sim milliseconds).
    pub t_ms: u64,
    /// Key/value annotations recorded at commit time.
    pub meta: Vec<(String, String)>,
    /// Records sorted by IP, unique per IP.
    pub records: Vec<Observation>,
}

impl Snapshot {
    /// Looks up a meta value by key.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Read access to a committed snapshot sequence.
pub trait SnapshotSource {
    /// Number of committed snapshots.
    fn snapshot_count(&self) -> u32;

    /// Resolves an interned string id (`0` and unknown ids yield `""`).
    fn string(&self, id: u32) -> &str;

    /// Materializes snapshot `seq`.
    fn snapshot(&self, seq: u32) -> io::Result<Snapshot>;

    /// Streams every snapshot in commit order. The default
    /// materializes each via [`snapshot`](Self::snapshot); stores that
    /// hold deltas override-friendly callers should prefer this to
    /// repeated `snapshot` calls (a store can reconstruct incrementally
    /// in one pass instead of replaying deltas per call).
    fn for_each_snapshot(&self, f: &mut dyn FnMut(&Snapshot) -> io::Result<()>) -> io::Result<()> {
        for seq in 0..self.snapshot_count() {
            f(&self.snapshot(seq)?)?;
        }
        Ok(())
    }

    /// The delta cursor from snapshot `seq` to `seq + 1`.
    fn diff(&self, seq: u32) -> io::Result<SnapshotDiff> {
        let prev = self.snapshot(seq)?;
        let next = self.snapshot(seq + 1)?;
        Ok(SnapshotDiff::between(&prev.records, &next.records))
    }

    /// Sequence number of the first snapshot committed under `label`,
    /// if any — the cursor campaigns with heterogeneous snapshot kinds
    /// (verification's `primary`/`secondary`, snooping's `sample` +
    /// per-round snapshots) use to find their parts.
    fn find_label(&self, label: &str) -> Option<u32> {
        let mut found = None;
        let _ = self.for_each_snapshot(&mut |snap| {
            if found.is_none() && snap.label == label {
                found = Some(snap.seq);
            }
            Ok(())
        });
        found
    }
}

/// Week-over-week survival of the cohort fixed by snapshot `base`:
/// element `w` counts how many of base's IPs are still present in
/// snapshot `base + w` (element 0 is the cohort size itself). Runs a
/// single streaming pass over the source.
pub fn cohort_survival(src: &dyn SnapshotSource, base: u32) -> io::Result<Vec<usize>> {
    let cohort: Vec<u32> = src.snapshot(base)?.records.iter().map(|o| o.ip).collect();
    let mut survival = Vec::new();
    src.for_each_snapshot(&mut |snap| {
        if snap.seq < base {
            return Ok(());
        }
        let mut alive = 0usize;
        let mut records = snap.records.iter().peekable();
        for &ip in &cohort {
            while records.next_if(|o| o.ip < ip).is_some() {}
            if records.next_if(|o| o.ip == ip).is_some() {
                alive += 1;
            }
        }
        survival.push(alive);
        Ok(())
    })?;
    Ok(survival)
}
