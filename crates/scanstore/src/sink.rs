//! Sink traits: how campaigns hand observations to a store.
//!
//! Campaign code (`scanner::campaign::*`) is written against
//! [`ObservationSink`] so the same scan loop can stream into an
//! in-memory store, a persistent [`CampaignStore`](crate::CampaignStore),
//! or a [`NullSink`] when the caller only wants the returned summary.

use crate::record::Observation;
use std::io;

/// Receives observations for the snapshot currently being built.
pub trait ObservationSink {
    /// Records one observation. Observations may arrive in any order;
    /// the sink sorts by IP at commit time. If the same IP is observed
    /// twice within one snapshot, the first observation wins (matching
    /// the first-response-wins semantics of the enumeration scan).
    fn observe(&mut self, obs: Observation);

    /// Interns a string, returning its id (stable for the lifetime of
    /// the campaign; `0` is reserved for "absent").
    fn intern(&mut self, s: &str) -> u32;
}

/// A sink that can seal the pending observations into a committed,
/// durable snapshot.
pub trait SnapshotSink: ObservationSink {
    /// Commits the pending observations as the next snapshot and
    /// returns its sequence number. `meta` carries small key/value
    /// annotations (ground truth, per-scan counters).
    fn commit(&mut self, label: &str, t_ms: u64, meta: &[(String, String)]) -> io::Result<u32>;
}

/// Swallows everything. Lets campaign entry points keep a sink
/// parameter without forcing callers to persist.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ObservationSink for NullSink {
    fn observe(&mut self, _obs: Observation) {}

    fn intern(&mut self, _s: &str) -> u32 {
        0
    }
}

impl SnapshotSink for NullSink {
    fn commit(&mut self, _label: &str, _t_ms: u64, _meta: &[(String, String)]) -> io::Result<u32> {
        Ok(0)
    }
}
