//! Property tests for the IPv4 interval map — the backbone of every
//! database join in the pipeline.

use geodb::rangemap::IpRangeMap;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Generate disjoint ranges with gaps: `(start, len, gap)` triples laid
/// out sequentially.
fn ranges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    (
        0x0100_0000u32..0x2000_0000,
        proptest::collection::vec((1u32..5_000, 1u32..5_000), 1..20),
    )
        .prop_map(|(base, segments)| {
            let mut out = Vec::new();
            let mut cursor = base;
            for (len, gap) in segments {
                let start = cursor;
                let end = start + len - 1;
                out.push((start, end));
                cursor = end + 1 + gap;
            }
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every inserted address resolves to its range's value; gap
    /// addresses resolve to nothing.
    #[test]
    fn lookups_respect_boundaries(ranges in ranges_strategy()) {
        let mut b = IpRangeMap::builder();
        for (i, &(s, e)) in ranges.iter().enumerate() {
            b.insert(Ipv4Addr::from(s), Ipv4Addr::from(e), i).unwrap();
        }
        let m = b.build();
        for (i, &(s, e)) in ranges.iter().enumerate() {
            prop_assert_eq!(m.get(Ipv4Addr::from(s)), Some(&i));
            prop_assert_eq!(m.get(Ipv4Addr::from(e)), Some(&i));
            let mid = s + (e - s) / 2;
            prop_assert_eq!(m.get(Ipv4Addr::from(mid)), Some(&i));
            // Just outside the boundaries: either a different range or none.
            if s > 0 {
                prop_assert_ne!(m.get(Ipv4Addr::from(s - 1)), Some(&i));
            }
            prop_assert_ne!(m.get(Ipv4Addr::from(e + 1)), Some(&i));
        }
    }

    /// Insertion order does not matter.
    #[test]
    fn insertion_order_irrelevant(ranges in ranges_strategy(), seed in any::<u64>()) {
        let mut forward = IpRangeMap::builder();
        for (i, &(s, e)) in ranges.iter().enumerate() {
            forward.insert(Ipv4Addr::from(s), Ipv4Addr::from(e), i).unwrap();
        }
        // Deterministic shuffle.
        let mut shuffled: Vec<(usize, (u32, u32))> = ranges.iter().copied().enumerate().collect();
        shuffled.sort_by_key(|(i, _)| (*i as u64).wrapping_mul(seed | 1) >> 32);
        let mut backward = IpRangeMap::builder();
        for (i, (s, e)) in &shuffled {
            backward.insert(Ipv4Addr::from(*s), Ipv4Addr::from(*e), *i).unwrap();
        }
        let (mf, mb) = (forward.build(), backward.build());
        for &(s, e) in &ranges {
            for probe in [s, (s + e) / 2, e] {
                prop_assert_eq!(mf.get(Ipv4Addr::from(probe)), mb.get(Ipv4Addr::from(probe)));
            }
        }
    }

    /// Overlapping insertions are always rejected.
    #[test]
    fn overlaps_always_rejected(
        ranges in ranges_strategy(),
        pick in any::<prop::sample::Index>(),
        offset in 0u32..100,
    ) {
        let mut b = IpRangeMap::builder();
        for (i, &(s, e)) in ranges.iter().enumerate() {
            b.insert(Ipv4Addr::from(s), Ipv4Addr::from(e), i).unwrap();
        }
        let (s, e) = ranges[pick.index(ranges.len())];
        // Any range that contains a point of an existing range must fail.
        let probe_start = s.saturating_add(offset.min(e - s));
        prop_assert!(b
            .insert(Ipv4Addr::from(probe_start), Ipv4Addr::from(e + 10), usize::MAX)
            .is_err());
    }
}
