//! Regional Internet Registries and the country→RIR mapping used by
//! Table 2.

use crate::country::Country;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five Regional Internet Registries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Rir {
    /// RIPE NCC — Europe, Middle East, Central Asia.
    Ripe,
    /// APNIC — Asia-Pacific.
    Apnic,
    /// LACNIC — Latin America and the Caribbean.
    Lacnic,
    /// ARIN — North America.
    Arin,
    /// AFRINIC — Africa.
    Afrinic,
}

impl Rir {
    /// All registries, in the paper's Table 2 row order.
    pub const ALL: [Rir; 5] = [Rir::Ripe, Rir::Apnic, Rir::Lacnic, Rir::Arin, Rir::Afrinic];

    /// Registry responsible for a country. The mapping covers every
    /// country the synthetic world generates plus a continental default
    /// for anything else (first letter buckets are *not* meaningful; the
    /// fallback is ARIN to keep the function total).
    pub fn for_country(c: Country) -> Rir {
        match c.as_str() {
            // RIPE NCC: Europe, Middle East, parts of Central Asia.
            "TR" | "IT" | "DE" | "FR" | "GB" | "RU" | "PL" | "NL" | "ES" | "SE" | "GR" | "BE"
            | "UA" | "RO" | "CZ" | "IR" | "LB" | "EE" | "CH" | "AT" | "PT" | "HU" => Rir::Ripe,
            // APNIC: Asia-Pacific.
            "CN" | "VN" | "IN" | "TH" | "TW" | "KR" | "JP" | "ID" | "MY" | "AU" | "PH" | "BD"
            | "PK" | "HK" | "SG" | "MN" | "NZ" => Rir::Apnic,
            // LACNIC: Latin America and the Caribbean.
            "MX" | "CO" | "AR" | "BR" | "CL" | "PE" | "VE" | "EC" | "UY" | "BO" | "PY" => {
                Rir::Lacnic
            }
            // ARIN: North America.
            "US" | "CA" => Rir::Arin,
            // AFRINIC: Africa.
            "EG" | "DZ" | "ZA" | "NG" | "MA" | "TN" | "KE" | "GH" => Rir::Afrinic,
            _ => Rir::Arin,
        }
    }

    /// Display name matching the paper's Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Rir::Ripe => "RIPE",
            Rir::Apnic => "APNIC",
            Rir::Lacnic => "LACNIC",
            Rir::Arin => "ARIN",
            Rir::Afrinic => "AFRINIC",
        }
    }
}

impl fmt::Display for Rir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_top10_countries_map_correctly() {
        // Table 1's Top 10: US CN TR VN MX IN TH IT CO TW.
        let cases = [
            ("US", Rir::Arin),
            ("CN", Rir::Apnic),
            ("TR", Rir::Ripe),
            ("VN", Rir::Apnic),
            ("MX", Rir::Lacnic),
            ("IN", Rir::Apnic),
            ("TH", Rir::Apnic),
            ("IT", Rir::Ripe),
            ("CO", Rir::Lacnic),
            ("TW", Rir::Apnic),
        ];
        for (code, rir) in cases {
            assert_eq!(Rir::for_country(Country::new(code)), rir, "{code}");
        }
    }

    #[test]
    fn unknown_country_gets_total_fallback() {
        assert_eq!(Rir::for_country(Country::new("ZZ")), Rir::Arin);
    }

    #[test]
    fn names_match_table2() {
        let names: Vec<_> = Rir::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names, vec!["RIPE", "APNIC", "LACNIC", "ARIN", "AFRINIC"]);
    }
}
