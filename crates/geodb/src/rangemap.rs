//! A sorted, non-overlapping interval map over the IPv4 address space.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One entry: inclusive `[start, end]` mapped to a value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Range<T> {
    start: u32,
    end: u32,
    value: T,
}

/// An immutable interval map with O(log n) point lookups. Construct via
/// [`IpRangeMap::builder`], which validates ordering and rejects
/// overlaps at insert time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpRangeMap<T> {
    ranges: Vec<Range<T>>,
}

impl<T> Default for IpRangeMap<T> {
    fn default() -> Self {
        IpRangeMap { ranges: Vec::new() }
    }
}

/// Error when inserting an invalid or overlapping range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeError {
    /// `start > end`.
    Inverted {
        /// Requested start.
        start: u32,
        /// Requested end.
        end: u32,
    },
    /// The new range intersects an existing one.
    Overlap {
        /// Requested start.
        start: u32,
        /// Requested end.
        end: u32,
    },
}

impl std::fmt::Display for RangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RangeError::Inverted { start, end } => write!(
                f,
                "inverted range {}..{}",
                Ipv4Addr::from(*start),
                Ipv4Addr::from(*end)
            ),
            RangeError::Overlap { start, end } => write!(
                f,
                "range {}..{} overlaps an existing range",
                Ipv4Addr::from(*start),
                Ipv4Addr::from(*end)
            ),
        }
    }
}

impl std::error::Error for RangeError {}

/// Builder enforcing the non-overlap invariant.
#[derive(Debug, Clone)]
pub struct IpRangeMapBuilder<T> {
    ranges: Vec<Range<T>>,
}

impl<T> IpRangeMapBuilder<T> {
    /// Insert `[start, end]` (inclusive) mapping to `value`.
    pub fn insert(
        &mut self,
        start: Ipv4Addr,
        end: Ipv4Addr,
        value: T,
    ) -> Result<&mut Self, RangeError> {
        let (s, e) = (u32::from(start), u32::from(end));
        if s > e {
            return Err(RangeError::Inverted { start: s, end: e });
        }
        // Find insertion point by start.
        let idx = self.ranges.partition_point(|r| r.start < s);
        // Check neighbor overlap.
        if idx > 0 && self.ranges[idx - 1].end >= s {
            return Err(RangeError::Overlap { start: s, end: e });
        }
        if idx < self.ranges.len() && self.ranges[idx].start <= e {
            return Err(RangeError::Overlap { start: s, end: e });
        }
        self.ranges.insert(
            idx,
            Range {
                start: s,
                end: e,
                value,
            },
        );
        Ok(self)
    }

    /// Insert a CIDR block `base/prefix_len`.
    pub fn insert_cidr(
        &mut self,
        base: Ipv4Addr,
        prefix_len: u8,
        value: T,
    ) -> Result<&mut Self, RangeError> {
        assert!(prefix_len <= 32, "prefix length out of range");
        let b = u32::from(base);
        let mask = if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        };
        let start = b & mask;
        let end = start | !mask;
        self.insert(Ipv4Addr::from(start), Ipv4Addr::from(end), value)
    }

    /// Finalize.
    pub fn build(self) -> IpRangeMap<T> {
        IpRangeMap {
            ranges: self.ranges,
        }
    }
}

impl<T> IpRangeMap<T> {
    /// Start building a map.
    pub fn builder() -> IpRangeMapBuilder<T> {
        IpRangeMapBuilder { ranges: Vec::new() }
    }

    /// The value whose range contains `ip`.
    pub fn get(&self, ip: Ipv4Addr) -> Option<&T> {
        let v = u32::from(ip);
        let idx = self.ranges.partition_point(|r| r.start <= v);
        if idx == 0 {
            return None;
        }
        let r = &self.ranges[idx - 1];
        (v <= r.end).then_some(&r.value)
    }

    /// Number of ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Iterate `(start, end, value)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Addr, Ipv4Addr, &T)> {
        self.ranges
            .iter()
            .map(|r| (Ipv4Addr::from(r.start), Ipv4Addr::from(r.end), &r.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn point_lookup() {
        let mut b = IpRangeMap::builder();
        b.insert(ip("10.0.0.0"), ip("10.0.0.255"), "a").unwrap();
        b.insert(ip("10.0.2.0"), ip("10.0.2.255"), "b").unwrap();
        let m = b.build();
        assert_eq!(m.get(ip("10.0.0.7")), Some(&"a"));
        assert_eq!(m.get(ip("10.0.2.0")), Some(&"b"));
        assert_eq!(m.get(ip("10.0.2.255")), Some(&"b"));
        assert_eq!(m.get(ip("10.0.1.0")), None);
        assert_eq!(m.get(ip("9.255.255.255")), None);
        assert_eq!(m.get(ip("10.0.3.0")), None);
    }

    #[test]
    fn rejects_overlaps() {
        let mut b = IpRangeMap::builder();
        b.insert(ip("10.0.0.0"), ip("10.0.0.255"), 1).unwrap();
        assert!(matches!(
            b.insert(ip("10.0.0.128"), ip("10.0.1.0"), 2),
            Err(RangeError::Overlap { .. })
        ));
        assert!(matches!(
            b.insert(ip("9.255.255.0"), ip("10.0.0.0"), 3),
            Err(RangeError::Overlap { .. })
        ));
        // Adjacent (non-overlapping) is fine.
        b.insert(ip("10.0.1.0"), ip("10.0.1.255"), 4).unwrap();
    }

    #[test]
    fn rejects_inverted() {
        let mut b = IpRangeMap::builder();
        assert!(matches!(
            b.insert(ip("10.0.1.0"), ip("10.0.0.0"), 1),
            Err(RangeError::Inverted { .. })
        ));
    }

    #[test]
    fn out_of_order_insertion_sorted() {
        let mut b = IpRangeMap::builder();
        b.insert(ip("50.0.0.0"), ip("50.0.0.255"), "high").unwrap();
        b.insert(ip("20.0.0.0"), ip("20.0.0.255"), "low").unwrap();
        let m = b.build();
        let starts: Vec<_> = m.iter().map(|(s, _, _)| s).collect();
        assert_eq!(starts, vec![ip("20.0.0.0"), ip("50.0.0.0")]);
        assert_eq!(m.get(ip("20.0.0.1")), Some(&"low"));
    }

    #[test]
    fn cidr_insertion() {
        let mut b = IpRangeMap::builder();
        b.insert_cidr(ip("192.0.2.77"), 24, "doc").unwrap();
        let m = b.build();
        assert_eq!(m.get(ip("192.0.2.0")), Some(&"doc"));
        assert_eq!(m.get(ip("192.0.2.255")), Some(&"doc"));
        assert_eq!(m.get(ip("192.0.3.0")), None);
    }

    #[test]
    fn single_address_range() {
        let mut b = IpRangeMap::builder();
        b.insert(ip("8.8.8.8"), ip("8.8.8.8"), "dns").unwrap();
        let m = b.build();
        assert_eq!(m.get(ip("8.8.8.8")), Some(&"dns"));
        assert_eq!(m.get(ip("8.8.8.7")), None);
        assert_eq!(m.get(ip("8.8.8.9")), None);
    }

    #[test]
    fn full_space_cidr0() {
        let mut b = IpRangeMap::builder();
        b.insert_cidr(ip("1.2.3.4"), 0, "all").unwrap();
        let m = b.build();
        assert_eq!(m.get(ip("0.0.0.0")), Some(&"all"));
        assert_eq!(m.get(ip("255.255.255.255")), Some(&"all"));
    }
}
