//! # geodb — synthetic GeoIP / ASN / RIR / reverse-DNS databases
//!
//! The paper joins scan results against three external databases: the
//! MaxMind GeoIP country database (Tables 1, Figure 4), a BGP-derived
//! IP→AS mapping (AS-based statistics, prefilter rule (i)), and the
//! in-addr.arpa reverse-DNS zone (prefilter rule (ii), churn analysis).
//! This crate provides the same *lookup interfaces* over synthetic data
//! produced by `worldgen`, so the analysis pipeline exercises identical
//! join logic.
//!
//! The core structure is [`IpRangeMap`]: a sorted, non-overlapping
//! interval map over the IPv4 space with O(log n) lookups.

pub mod country;
pub mod rangemap;
pub mod rdns;
pub mod rir;

pub use country::Country;
pub use rangemap::IpRangeMap;
pub use rdns::{RdnsDb, RdnsPattern};
pub use rir::Rir;

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Information about one autonomous system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsInfo {
    /// Autonomous system number.
    pub asn: u32,
    /// Organization name, e.g. `"AR-TELECOM-SUR"`.
    pub name: String,
    /// Registration country.
    pub country: Country,
    /// Whether this AS is a broadband / end-user access network. Drives
    /// the paper's "Top 25 networks are telcos" observation and the
    /// dynamic-IP churn model.
    pub broadband: bool,
}

/// One allocated network block: the unit of the synthetic databases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetBlock {
    /// GeoIP country of the block.
    pub country: Country,
    /// Announcing AS.
    pub asn: u32,
    /// Reverse-DNS naming pattern for hosts in this block, if the
    /// operator populates the in-addr.arpa zone.
    pub rdns: Option<RdnsPattern>,
}

/// The combined geo/AS database: IP → [`NetBlock`], plus the AS registry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GeoDb {
    blocks: IpRangeMap<NetBlock>,
    ases: Vec<AsInfo>,
}

impl GeoDb {
    /// Build from parts. `blocks` must already be non-overlapping (the
    /// [`IpRangeMap`] builder enforces this); `ases` is indexed by ASN.
    pub fn new(blocks: IpRangeMap<NetBlock>, mut ases: Vec<AsInfo>) -> Self {
        ases.sort_by_key(|a| a.asn);
        ases.dedup_by_key(|a| a.asn);
        GeoDb { blocks, ases }
    }

    /// The network block containing `ip`.
    pub fn block(&self, ip: Ipv4Addr) -> Option<&NetBlock> {
        self.blocks.get(ip)
    }

    /// Country of `ip` per the GeoIP database.
    pub fn country(&self, ip: Ipv4Addr) -> Option<Country> {
        self.block(ip).map(|b| b.country)
    }

    /// ASN announcing `ip`.
    pub fn asn(&self, ip: Ipv4Addr) -> Option<u32> {
        self.block(ip).map(|b| b.asn)
    }

    /// Regional Internet Registry responsible for `ip` (via its country).
    pub fn rir(&self, ip: Ipv4Addr) -> Option<Rir> {
        self.country(ip).map(Rir::for_country)
    }

    /// Registry entry for an ASN.
    pub fn as_info(&self, asn: u32) -> Option<&AsInfo> {
        self.ases
            .binary_search_by_key(&asn, |a| a.asn)
            .ok()
            .map(|i| &self.ases[i])
    }

    /// Whether two addresses are announced by the same AS — prefilter
    /// rule (i) of Section 3.4.
    pub fn same_as(&self, a: Ipv4Addr, b: Ipv4Addr) -> bool {
        match (self.asn(a), self.asn(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Whether two addresses share a /24 — used by the captive-portal
    /// heuristic of Section 4.2.
    pub fn same_slash24(a: Ipv4Addr, b: Ipv4Addr) -> bool {
        u32::from(a) >> 8 == u32::from(b) >> 8
    }

    /// Iterate all registered ASes.
    pub fn ases(&self) -> &[AsInfo] {
        &self.ases
    }

    /// Number of blocks in the database.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterate all blocks as `(start, end, block)` in address order.
    pub fn blocks_iter(&self) -> impl Iterator<Item = (Ipv4Addr, Ipv4Addr, &NetBlock)> {
        self.blocks.iter()
    }
}

/// Well-known non-routable / reserved ranges excluded from scans
/// ("excluding well-known private and unallocated network ranges",
/// Sec. 2.2). Each entry is `(first, last)` inclusive.
pub const RESERVED_RANGES: &[(u32, u32)] = &[
    (0x00000000, 0x00FFFFFF), // 0.0.0.0/8
    (0x0A000000, 0x0AFFFFFF), // 10.0.0.0/8
    (0x7F000000, 0x7FFFFFFF), // 127.0.0.0/8
    (0xA9FE0000, 0xA9FEFFFF), // 169.254.0.0/16
    (0xAC100000, 0xAC1FFFFF), // 172.16.0.0/12
    (0xC0A80000, 0xC0A8FFFF), // 192.168.0.0/16
    (0xE0000000, 0xFFFFFFFF), // 224.0.0.0/3 multicast + reserved
];

/// `true` if `ip` falls into a reserved range.
pub fn is_reserved(ip: Ipv4Addr) -> bool {
    let v = u32::from(ip);
    RESERVED_RANGES
        .iter()
        .any(|&(lo, hi)| (lo..=hi).contains(&v))
}

/// `true` if `ip` is an RFC 1918 / loopback / link-local address —
/// the "LAN IP" check of Section 4.2 (up to 65.1% of suspicious
/// resolvers returned LAN addresses).
pub fn is_lan(ip: Ipv4Addr) -> bool {
    ip.is_private() || ip.is_loopback() || ip.is_link_local()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn sample_db() -> GeoDb {
        let mut b = IpRangeMap::builder();
        b.insert(
            ip("1.0.0.0"),
            ip("1.0.255.255"),
            NetBlock {
                country: Country::new("CN"),
                asn: 4134,
                rdns: None,
            },
        )
        .unwrap();
        b.insert(
            ip("5.5.0.0"),
            ip("5.5.63.255"),
            NetBlock {
                country: Country::new("TR"),
                asn: 9121,
                rdns: Some(RdnsPattern::dynamic_broadband("ttnet.example")),
            },
        )
        .unwrap();
        GeoDb::new(
            b.build(),
            vec![
                AsInfo {
                    asn: 4134,
                    name: "CHINANET".into(),
                    country: Country::new("CN"),
                    broadband: true,
                },
                AsInfo {
                    asn: 9121,
                    name: "TTNET".into(),
                    country: Country::new("TR"),
                    broadband: true,
                },
            ],
        )
    }

    #[test]
    fn lookup_inside_and_outside_blocks() {
        let db = sample_db();
        assert_eq!(db.country(ip("1.0.3.4")), Some(Country::new("CN")));
        assert_eq!(db.asn(ip("5.5.10.10")), Some(9121));
        assert_eq!(db.country(ip("9.9.9.9")), None);
    }

    #[test]
    fn rir_derived_from_country() {
        let db = sample_db();
        assert_eq!(db.rir(ip("1.0.0.1")), Some(Rir::Apnic));
        assert_eq!(db.rir(ip("5.5.0.1")), Some(Rir::Ripe));
    }

    #[test]
    fn same_as_and_slash24() {
        let db = sample_db();
        assert!(db.same_as(ip("1.0.0.1"), ip("1.0.200.1")));
        assert!(!db.same_as(ip("1.0.0.1"), ip("5.5.0.1")));
        assert!(
            !db.same_as(ip("9.9.9.9"), ip("9.9.9.10")),
            "unknown IPs never match"
        );
        assert!(GeoDb::same_slash24(ip("2.3.4.5"), ip("2.3.4.200")));
        assert!(!GeoDb::same_slash24(ip("2.3.4.5"), ip("2.3.5.5")));
    }

    #[test]
    fn as_registry_lookup() {
        let db = sample_db();
        assert_eq!(db.as_info(4134).unwrap().name, "CHINANET");
        assert!(db.as_info(65000).is_none());
    }

    #[test]
    fn reserved_and_lan_checks() {
        assert!(is_reserved(ip("10.1.2.3")));
        assert!(is_reserved(ip("192.168.1.1")));
        assert!(is_reserved(ip("239.1.2.3")));
        assert!(!is_reserved(ip("8.8.8.8")));
        assert!(is_lan(ip("172.16.5.5")));
        assert!(is_lan(ip("127.0.0.1")));
        assert!(!is_lan(ip("100.100.100.100")));
    }
}
