//! ISO-3166-style two-letter country codes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A two-letter country code (upper-cased ASCII), stored inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Country([u8; 2]);

impl Country {
    /// Construct from a two-letter code. Panics on malformed codes —
    /// country codes in this system are compile-time or generator
    /// constants, never untrusted input.
    pub fn new(code: &str) -> Self {
        let bytes = code.as_bytes();
        assert!(
            bytes.len() == 2 && bytes.iter().all(|b| b.is_ascii_alphabetic()),
            "invalid country code `{code}`"
        );
        Country([bytes[0].to_ascii_uppercase(), bytes[1].to_ascii_uppercase()])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        // Invariant: always ASCII alphabetic.
        std::str::from_utf8(&self.0).unwrap()
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_case() {
        assert_eq!(Country::new("cn"), Country::new("CN"));
        assert_eq!(Country::new("tr").as_str(), "TR");
    }

    #[test]
    #[should_panic(expected = "invalid country code")]
    fn rejects_long_codes() {
        let _ = Country::new("USA");
    }

    #[test]
    #[should_panic(expected = "invalid country code")]
    fn rejects_non_alpha() {
        let _ = Country::new("1X");
    }

    #[test]
    fn ordering_is_alphabetical() {
        assert!(Country::new("AR") < Country::new("US"));
    }
}
