//! Synthetic reverse-DNS (in-addr.arpa) zone.
//!
//! Two consumers in the pipeline:
//! * the **churn analysis** (Sec. 2.5) matches rDNS records of vanished
//!   resolvers against tokens indicating dynamic assignment
//!   ("broadband, dialup, and dynamic");
//! * the **prefilter** (Sec. 3.4, rule ii) checks whether the rDNS name
//!   of a returned IP resembles the requested domain, *and* whether the
//!   rDNS name's forward A record maps back to the IP (only the domain
//!   owner can set up the A record).

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

use crate::rangemap::IpRangeMap;

/// Tokens the churn analysis treats as indicating dynamic IP assignment.
pub const DYNAMIC_TOKENS: &[&str] = &[
    "dynamic",
    "dyn",
    "dialup",
    "dial",
    "broadband",
    "bb",
    "pool",
    "dhcp",
    "ppp",
];

/// How hosts in a block are named in the reverse zone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RdnsPattern {
    /// `host-<a>-<b>-<c>-<d>.<infix>.<zone>` where `infix` carries a
    /// dynamic-assignment token, e.g. `host-5-5-1-2.dynamic.ttnet.example`.
    DynamicPool {
        /// Operator zone suffix.
        zone: String,
        /// The dynamic-assignment token, e.g. `"dynamic"`.
        token: String,
    },
    /// `static-<a>-<b>-<c>-<d>.<zone>` — statically assigned space.
    StaticHost {
        /// Operator zone suffix.
        zone: String,
    },
    /// A fixed name for every address in the block (e.g. CDN edge or
    /// service anycast), such as `cache.cdn.example`.
    Fixed {
        /// The PTR target.
        name: String,
    },
}

impl RdnsPattern {
    /// Convenience constructor for a dynamic broadband pool.
    pub fn dynamic_broadband(zone: &str) -> Self {
        RdnsPattern::DynamicPool {
            zone: zone.to_string(),
            token: "dynamic".to_string(),
        }
    }

    /// Convenience constructor for static space.
    pub fn static_host(zone: &str) -> Self {
        RdnsPattern::StaticHost {
            zone: zone.to_string(),
        }
    }

    /// Render the PTR target for `ip`.
    pub fn name_for(&self, ip: Ipv4Addr) -> String {
        let o = ip.octets();
        match self {
            RdnsPattern::DynamicPool { zone, token } => {
                format!("host-{}-{}-{}-{}.{token}.{zone}", o[0], o[1], o[2], o[3])
            }
            RdnsPattern::StaticHost { zone } => {
                format!("static-{}-{}-{}-{}.{zone}", o[0], o[1], o[2], o[3])
            }
            RdnsPattern::Fixed { name } => name.clone(),
        }
    }
}

/// The reverse zone: IP ranges with naming patterns plus point overrides
/// for individual service hosts (web servers, mail servers, CDN edges).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RdnsDb {
    patterns: IpRangeMap<RdnsPattern>,
    /// Sorted `(ip, name)` overrides; consulted before the range patterns.
    overrides: Vec<(u32, String)>,
}

impl RdnsDb {
    /// Build from range patterns plus per-address overrides.
    pub fn new(patterns: IpRangeMap<RdnsPattern>, mut overrides: Vec<(Ipv4Addr, String)>) -> Self {
        let mut ov: Vec<(u32, String)> = overrides
            .drain(..)
            .map(|(ip, name)| (u32::from(ip), name))
            .collect();
        ov.sort_by_key(|(ip, _)| *ip);
        ov.dedup_by_key(|(ip, _)| *ip);
        RdnsDb {
            patterns,
            overrides: ov,
        }
    }

    /// PTR lookup: the rDNS name of `ip`, if the operator populated the
    /// reverse zone.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<String> {
        let v = u32::from(ip);
        if let Ok(i) = self.overrides.binary_search_by_key(&v, |(ip, _)| *ip) {
            return Some(self.overrides[i].1.clone());
        }
        self.patterns.get(ip).map(|p| p.name_for(ip))
    }

    /// Whether the rDNS name of `ip` carries a dynamic-assignment token —
    /// the Sec. 2.5 churn heuristic (67.4% of day-one leavers matched).
    pub fn is_dynamic(&self, ip: Ipv4Addr) -> bool {
        match self.lookup(ip) {
            Some(name) => {
                let lower = name.to_ascii_lowercase();
                lower
                    .split('.')
                    .any(|lbl| DYNAMIC_TOKENS.iter().any(|t| lbl == *t || lbl.contains(t)))
            }
            None => false,
        }
    }

    /// Number of point overrides.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn db() -> RdnsDb {
        let mut b = IpRangeMap::builder();
        b.insert(
            ip("5.5.0.0"),
            ip("5.5.255.255"),
            RdnsPattern::dynamic_broadband("ttnet.example"),
        )
        .unwrap();
        b.insert(
            ip("6.6.0.0"),
            ip("6.6.0.255"),
            RdnsPattern::static_host("hosting.example"),
        )
        .unwrap();
        b.insert(
            ip("7.7.7.0"),
            ip("7.7.7.255"),
            RdnsPattern::Fixed {
                name: "edge.cdn.example".into(),
            },
        )
        .unwrap();
        RdnsDb::new(
            b.build(),
            vec![(ip("6.6.0.10"), "www.bank.example".to_string())],
        )
    }

    #[test]
    fn dynamic_pool_naming() {
        let d = db();
        assert_eq!(
            d.lookup(ip("5.5.1.2")).unwrap(),
            "host-5-5-1-2.dynamic.ttnet.example"
        );
        assert!(d.is_dynamic(ip("5.5.1.2")));
    }

    #[test]
    fn static_space_not_dynamic() {
        let d = db();
        assert_eq!(
            d.lookup(ip("6.6.0.99")).unwrap(),
            "static-6-6-0-99.hosting.example"
        );
        assert!(!d.is_dynamic(ip("6.6.0.99")));
    }

    #[test]
    fn fixed_and_override() {
        let d = db();
        assert_eq!(d.lookup(ip("7.7.7.42")).unwrap(), "edge.cdn.example");
        assert_eq!(d.lookup(ip("6.6.0.10")).unwrap(), "www.bank.example");
    }

    #[test]
    fn missing_zone_returns_none() {
        let d = db();
        assert_eq!(d.lookup(ip("9.9.9.9")), None);
        assert!(!d.is_dynamic(ip("9.9.9.9")));
    }

    #[test]
    fn token_matching_covers_paper_tokens() {
        for token in ["broadband", "dialup", "dynamic"] {
            let mut b = IpRangeMap::builder();
            b.insert(
                ip("5.0.0.0"),
                ip("5.0.0.255"),
                RdnsPattern::DynamicPool {
                    zone: "isp.example".into(),
                    token: token.to_string(),
                },
            )
            .unwrap();
            let d = RdnsDb::new(b.build(), vec![]);
            assert!(d.is_dynamic(ip("5.0.0.1")), "token {token}");
        }
    }
}
