//! Property tests for the simulator's foundational guarantees:
//! determinism under identical seeds and conservation of datagrams.

use proptest::prelude::*;

// A tiny harness: N echo hosts, M sends with arbitrary payload sizes.
mod harness {
    use netsim::host::EchoHost;
    use netsim::{Datagram, Network, NetworkConfig, SimTime};
    use std::net::Ipv4Addr;

    pub fn run(
        seed: u64,
        loss: f64,
        sends: &[(u8, Vec<u8>)],
    ) -> (Vec<(u64, Vec<u8>)>, netsim::network::NetStats) {
        let mut net = Network::new(NetworkConfig {
            seed,
            udp_loss: loss,
            latency_ms: (5, 80),
            tcp_loss: 0.0,
        });
        // 8 echo hosts on distinct addresses.
        for i in 0..8u8 {
            let h = net.add_host(Box::new(EchoHost));
            net.bind_ip(Ipv4Addr::new(9, 9, 9, i), h);
        }
        let sock = net.open_socket(Ipv4Addr::new(100, 0, 0, 1), 40_000);
        for (host, payload) in sends {
            net.send_udp(Datagram::new(
                Ipv4Addr::new(100, 0, 0, 1),
                40_000,
                Ipv4Addr::new(9, 9, 9, host % 8),
                53,
                payload.clone(),
            ));
        }
        net.run_until(SimTime::from_secs(60));
        let got = net
            .recv_all(sock)
            .into_iter()
            .map(|(t, d)| (t.millis(), d.payload.to_vec()))
            .collect();
        (got, net.stats())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed + same traffic ⇒ bit-identical outcomes (arrival times,
    /// payload order, statistics).
    #[test]
    fn identical_seeds_are_bit_identical(
        seed in any::<u64>(),
        loss in 0.0f64..0.5,
        sends in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..64)),
            1..60,
        ),
    ) {
        let a = harness::run(seed, loss, &sends);
        let b = harness::run(seed, loss, &sends);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    /// Datagram conservation: sent = delivered-to-host + lost + filtered
    /// + unbound + in-flight(0 after drain); replies are sends too.
    #[test]
    fn datagram_conservation(
        seed in any::<u64>(),
        loss in 0.0f64..0.9,
        sends in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..32)),
            1..40,
        ),
    ) {
        let (_, stats) = harness::run(seed, loss, &sends);
        prop_assert_eq!(
            stats.udp_sent,
            stats.udp_delivered + stats.udp_lost + stats.udp_filtered + stats.udp_unbound,
            "conservation violated: {:?}", stats
        );
    }

    /// With zero loss and bound destinations, every query produces
    /// exactly one reply at the socket.
    #[test]
    fn lossless_echo_is_exact(
        seed in any::<u64>(),
        sends in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..32)),
            1..40,
        ),
    ) {
        let (got, _) = harness::run(seed, 0.0, &sends);
        prop_assert_eq!(got.len(), sends.len());
    }
}
