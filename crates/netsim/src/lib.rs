//! # netsim — a deterministic discrete-event IPv4 network simulator
//!
//! The *Going Wild* paper runs against the live Internet; this
//! reproduction runs against `netsim`. The simulator models exactly the
//! network phenomena the paper's measurement methodology has to cope
//! with, and nothing more:
//!
//! * **UDP datagram delivery** with per-path latency and deterministic
//!   pseudo-random packet loss (DNS is UDP; Sec. 5 discusses loss as a
//!   completeness limit).
//! * **A synchronous TCP request/response channel** for banner grabbing
//!   (FTP/HTTP/SSH/Telnet fingerprinting, Sec. 2.4), HTTP(S) content
//!   acquisition (Sec. 3.5) and mail-banner probes.
//! * **On-path packet injectors** ([`PathObserver`]) — the Great
//!   Firewall model that races forged DNS answers ahead of legitimate
//!   ones (Sec. 4.2).
//! * **Network-level filters** that appear at configurable times —
//!   the ISPs that deployed DNS ingress/egress filtering mid-study and
//!   caused entire networks of resolvers to vanish (Sec. 2.3).
//! * **DHCP-style address churn** ([`churn::LeasePool`]) — consumer
//!   devices renumber daily, producing the 52.2%-gone-in-a-week curve of
//!   Figure 2.
//!
//! Determinism: every random decision is a pure function of the
//! simulation seed and the event's identity, so a run is reproducible
//! bit-for-bit. Event ordering is total (time, then insertion sequence).

pub mod churn;
pub mod faults;
pub mod host;
pub mod network;
pub mod packet;
pub mod time;

pub use churn::{ChurnConfig, LeasePool};
pub use faults::{
    BurstLoss, FaultEvent, FaultPlan, FaultStats, FaultWindows, LatencySpikes, RateLimit,
};
pub use host::{
    Host, HostCtx, HttpRequest, HttpResponse, MailProto, TcpError, TcpRequest, TcpResponse,
    TlsCertificate,
};
pub use network::{FilterDirection, HostId, Network, NetworkConfig, PathObserver, SocketHandle};
pub use packet::Datagram;
pub use time::SimTime;
