//! Simulated time: milliseconds since the simulation epoch.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in milliseconds since the epoch (which
/// experiments conventionally set to the paper's first scan date,
/// Jan 31, 2014).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// One millisecond, in clock units.
    pub const MILLISECOND: u64 = 1;
    /// One second, in clock units.
    pub const SECOND: u64 = 1_000;
    /// One minute, in clock units.
    pub const MINUTE: u64 = 60 * Self::SECOND;
    /// One hour, in clock units.
    pub const HOUR: u64 = 60 * Self::MINUTE;
    /// One day, in clock units.
    pub const DAY: u64 = 24 * Self::HOUR;
    /// One week, in clock units.
    pub const WEEK: u64 = 7 * Self::DAY;

    /// `s` seconds after the epoch.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * Self::SECOND)
    }

    /// `h` hours after the epoch.
    pub fn from_hours(h: u64) -> Self {
        SimTime(h * Self::HOUR)
    }

    /// `d` days after the epoch.
    pub fn from_days(d: u64) -> Self {
        SimTime(d * Self::DAY)
    }

    /// `w` weeks after the epoch.
    pub fn from_weeks(w: u64) -> Self {
        SimTime(w * Self::WEEK)
    }

    /// Milliseconds since epoch.
    pub fn millis(self) -> u64 {
        self.0
    }

    /// Whole weeks since epoch.
    pub fn weeks(self) -> u64 {
        self.0 / Self::WEEK
    }

    /// Whole days since epoch.
    pub fn days(self) -> u64 {
        self.0 / Self::DAY
    }

    /// Saturating difference in milliseconds.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, ms: u64) -> SimTime {
        SimTime(self.0 + ms)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ms: u64) {
        self.0 += ms;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1000;
        let d = total_secs / 86_400;
        let h = (total_secs % 86_400) / 3600;
        let m = (total_secs % 3600) / 60;
        let s = total_secs % 60;
        write!(f, "d{d}+{h:02}:{m:02}:{s:02}.{:03}", self.0 % 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimTime::from_weeks(2).days(), 14);
        assert_eq!(SimTime::from_days(3).millis(), 3 * 24 * 3600 * 1000);
        assert_eq!(SimTime::from_hours(25).days(), 1);
        assert_eq!(SimTime::from_secs(90).millis(), 90_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_days(1) + SimTime::HOUR;
        assert_eq!(t.since(SimTime::from_days(1)), SimTime::HOUR);
        assert_eq!(SimTime::ZERO.since(t), 0, "saturating");
        assert_eq!(t - SimTime::from_days(1), SimTime::HOUR);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_days(2)
            + 3 * SimTime::HOUR
            + 4 * SimTime::MINUTE
            + 5 * SimTime::SECOND
            + 6;
        assert_eq!(t.to_string(), "d2+03:04:05.006");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_weeks(1) > SimTime::from_days(6));
    }
}
