//! DHCP-style IP address churn.
//!
//! Section 2.5 of the paper measures resolver IP churn: 40% of resolvers
//! disappear from their IP within a day, 52.2% within a week — driven by
//! consumer broadband devices with short DHCP/PPPoE leases that renumber
//! inside their ISP's pool. [`LeasePool`] models exactly that: a set of
//! member hosts sharing an address pool, each renumbering when its lease
//! expires. Renumbering permutes hosts *within* the pool, so the pool's
//! aggregate population is stable (the resolver count stays flat) while
//! individual IP↔host associations decay — the effect Figure 2 plots.

use crate::network::{HostId, Network};
use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Per-pool churn parameters.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Mean lease duration in milliseconds. Actual leases are drawn
    /// uniformly from `[0.5 × mean, 1.5 × mean]`.
    pub mean_lease_ms: u64,
    /// Seed for this pool's renumbering decisions.
    pub seed: u64,
}

impl ChurnConfig {
    /// The consumer-broadband default: ~1-day leases (the paper finds
    /// >40% of resolvers gone within the first day).
    pub fn consumer_daily(seed: u64) -> Self {
        ChurnConfig {
            mean_lease_ms: SimTime::DAY,
            seed,
        }
    }

    /// Long leases for mostly-static assignments.
    pub fn stable(seed: u64) -> Self {
        ChurnConfig {
            mean_lease_ms: 52 * SimTime::WEEK,
            seed,
        }
    }
}

struct Member {
    host: HostId,
    current_ip: Ipv4Addr,
    lease_expires: SimTime,
}

/// A DHCP pool: `members` hosts sharing `addresses` (|addresses| ≥
/// |members|; the surplus models the ISP's free address headroom).
pub struct LeasePool {
    cfg: ChurnConfig,
    addresses: Vec<Ipv4Addr>,
    members: Vec<Member>,
    /// Indexes into `addresses` currently unassigned.
    free: Vec<u32>,
    rng: SmallRng,
}

impl LeasePool {
    /// Create the pool and perform initial assignment: member `i` gets
    /// `addresses[i]`, the rest go to the free list. Panics if the pool
    /// is smaller than the membership — an impossible ISP.
    pub fn new(
        net: &mut Network,
        cfg: ChurnConfig,
        addresses: Vec<Ipv4Addr>,
        members: Vec<HostId>,
        now: SimTime,
    ) -> Self {
        assert!(
            addresses.len() >= members.len(),
            "pool of {} addresses cannot hold {} members",
            addresses.len(),
            members.len()
        );
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let mut pool = LeasePool {
            free: (members.len() as u32..addresses.len() as u32).collect(),
            members: Vec::with_capacity(members.len()),
            addresses,
            rng,
            cfg,
        };
        for (i, host) in members.into_iter().enumerate() {
            let ip = pool.addresses[i];
            net.bind_ip(ip, host);
            let lease = pool.draw_lease();
            pool.members.push(Member {
                host,
                current_ip: ip,
                lease_expires: now + lease,
            });
        }
        pool
    }

    fn draw_lease(&mut self) -> u64 {
        let mean = self.cfg.mean_lease_ms;
        let lo = mean / 2;
        let hi = mean + mean / 2;
        self.rng.gen_range(lo..=hi)
    }

    /// Renumber every member whose lease expired by `now`. The expired
    /// member's old address goes back to the free list and it draws a
    /// fresh address — possibly, by chance, the same one. Returns the
    /// number of members that changed address.
    pub fn renumber_expired(&mut self, net: &mut Network, now: SimTime) -> usize {
        let mut changed = 0;
        for i in 0..self.members.len() {
            if self.members[i].lease_expires > now {
                continue;
            }
            // Release the old address.
            let old_ip = self.members[i].current_ip;
            net.unbind_ip(old_ip);
            let old_idx = self
                .addresses
                .iter()
                .position(|&a| a == old_ip)
                .expect("member address must be in pool") as u32;
            self.free.push(old_idx);
            // Draw a new one.
            let pick = self.rng.gen_range(0..self.free.len());
            let new_idx = self.free.swap_remove(pick);
            let new_ip = self.addresses[new_idx as usize];
            net.bind_ip(new_ip, self.members[i].host);
            self.members[i].current_ip = new_ip;
            let lease = self.draw_lease();
            self.members[i].lease_expires = now + lease;
            if new_ip != old_ip {
                changed += 1;
            }
        }
        changed
    }

    /// Current address of a member host.
    pub fn address_of(&self, host: HostId) -> Option<Ipv4Addr> {
        self.members
            .iter()
            .find(|m| m.host == host)
            .map(|m| m.current_ip)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the pool has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The earliest pending lease expiry, for adaptive stepping.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.members.iter().map(|m| m.lease_expires).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::EchoHost;
    use crate::network::NetworkConfig;

    fn pool_addresses(n: usize) -> Vec<Ipv4Addr> {
        (0..n as u32)
            .map(|i| Ipv4Addr::from(0x0505_0000 + i))
            .collect()
    }

    fn build(net: &mut Network, members: usize, slack: usize, mean_lease: u64) -> LeasePool {
        let hosts: Vec<HostId> = (0..members)
            .map(|_| net.add_host(Box::new(EchoHost)))
            .collect();
        LeasePool::new(
            net,
            ChurnConfig {
                mean_lease_ms: mean_lease,
                seed: 42,
            },
            pool_addresses(members + slack),
            hosts,
            SimTime::ZERO,
        )
    }

    #[test]
    fn initial_assignment_binds_all() {
        let mut net = Network::new(NetworkConfig::default());
        let pool = build(&mut net, 50, 20, SimTime::DAY);
        assert_eq!(net.binding_count(), 50);
        assert_eq!(pool.len(), 50);
        for m in 0..50u32 {
            let ip = pool.address_of(HostId(m)).unwrap();
            assert_eq!(net.host_at(ip), Some(HostId(m)));
        }
    }

    #[test]
    fn renumbering_preserves_population() {
        let mut net = Network::new(NetworkConfig::default());
        let mut pool = build(&mut net, 100, 50, SimTime::DAY);
        for day in 1..=30 {
            pool.renumber_expired(&mut net, SimTime::from_days(day));
            assert_eq!(net.binding_count(), 100, "population stable at day {day}");
        }
    }

    #[test]
    fn most_members_move_within_two_mean_leases() {
        let mut net = Network::new(NetworkConfig::default());
        let mut pool = build(&mut net, 200, 100, SimTime::DAY);
        let initial: Vec<Ipv4Addr> = (0..200u32)
            .map(|m| pool.address_of(HostId(m)).unwrap())
            .collect();
        // Step hourly for 2 days.
        for h in 1..=48 {
            pool.renumber_expired(&mut net, SimTime::from_hours(h));
        }
        let moved = (0..200u32)
            .filter(|&m| pool.address_of(HostId(m)).unwrap() != initial[m as usize])
            .count();
        assert!(moved > 150, "moved={moved}");
    }

    #[test]
    fn stable_config_rarely_moves() {
        let mut net = Network::new(NetworkConfig::default());
        let mut pool = build(&mut net, 100, 10, 52 * SimTime::WEEK);
        for w in 1..=10 {
            pool.renumber_expired(&mut net, SimTime::from_weeks(w));
        }
        let initial_still: usize = (0..100u32)
            .filter(|&m| pool.address_of(HostId(m)).unwrap() == Ipv4Addr::from(0x0505_0000 + m))
            .count();
        assert!(initial_still >= 95, "still={initial_still}");
    }

    #[test]
    fn old_address_becomes_unbound_or_reassigned() {
        let mut net = Network::new(NetworkConfig::default());
        let mut pool = build(&mut net, 10, 40, SimTime::HOUR);
        let before = pool.address_of(HostId(0)).unwrap();
        // Push far past the lease.
        pool.renumber_expired(&mut net, SimTime::from_days(1));
        let after = pool.address_of(HostId(0)).unwrap();
        if before != after {
            // The vacated IP either is free or now belongs to someone else.
            match net.host_at(before) {
                None => {}
                Some(h) => assert_ne!(h, HostId(0)),
            }
        }
        assert_eq!(net.host_at(after), Some(HostId(0)));
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn oversubscribed_pool_rejected() {
        let mut net = Network::new(NetworkConfig::default());
        let hosts: Vec<HostId> = (0..5).map(|_| net.add_host(Box::new(EchoHost))).collect();
        let _ = LeasePool::new(
            &mut net,
            ChurnConfig::consumer_daily(1),
            pool_addresses(3),
            hosts,
            SimTime::ZERO,
        );
    }

    #[test]
    fn next_expiry_advances() {
        let mut net = Network::new(NetworkConfig::default());
        let mut pool = build(&mut net, 10, 10, SimTime::DAY);
        let first = pool.next_expiry().unwrap();
        pool.renumber_expired(&mut net, first + SimTime::HOUR);
        let second = pool.next_expiry().unwrap();
        assert!(second > first);
    }
}
