//! Host behaviour traits and the TCP request/response vocabulary.

use crate::packet::Datagram;
use crate::time::SimTime;
use bytes::Bytes;
use std::net::Ipv4Addr;

/// Context handed to a host while it processes a datagram. Collects the
/// host's outgoing datagrams (with optional extra delay, e.g. a slow CPE
/// device or a deliberately delayed second answer).
pub struct HostCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The IP the datagram was delivered to (hosts can be multi-homed).
    pub local_ip: Ipv4Addr,
    pub(crate) outgoing: &'a mut Vec<(u64, Datagram)>,
}

impl<'a> HostCtx<'a> {
    /// Construct a context around an outgoing-datagram buffer. Exposed
    /// so host behaviours can be driven outside a [`crate::Network`]
    /// (unit tests, the tokio loopback server).
    pub fn new(now: SimTime, local_ip: Ipv4Addr, outgoing: &'a mut Vec<(u64, Datagram)>) -> Self {
        HostCtx {
            now,
            local_ip,
            outgoing,
        }
    }

    /// Queue a datagram for sending after `delay_ms` of host-side
    /// processing time (path latency is added by the network).
    pub fn send_udp_delayed(&mut self, dgram: Datagram, delay_ms: u64) {
        self.outgoing.push((delay_ms, dgram));
    }

    /// Queue a datagram for immediate sending.
    pub fn send_udp(&mut self, dgram: Datagram) {
        self.send_udp_delayed(dgram, 0);
    }
}

/// An HTTP request as issued by the data-acquisition client. The `host`
/// header carries the *domain* the client believes it is talking to —
/// transparent proxies, phishing kits and CDN nodes all key on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// `Host:` header value.
    pub host: String,
    /// Request path, e.g. `/`.
    pub path: String,
    /// Whether this is an HTTPS (TLS) request.
    pub tls: bool,
    /// TLS Server Name Indication; `None` models a request with SNI
    /// disabled (the prefilter sends both variants, Sec. 3.4).
    pub sni: Option<String>,
}

impl HttpRequest {
    /// Plain HTTP GET for `/` at `host`.
    pub fn http(host: &str) -> Self {
        HttpRequest {
            host: host.to_string(),
            path: "/".to_string(),
            tls: false,
            sni: None,
        }
    }

    /// HTTPS GET with SNI enabled.
    pub fn https_sni(host: &str) -> Self {
        HttpRequest {
            host: host.to_string(),
            path: "/".to_string(),
            tls: true,
            sni: Some(host.to_string()),
        }
    }

    /// HTTPS GET with SNI disabled (server returns its default cert).
    pub fn https_no_sni(host: &str) -> Self {
        HttpRequest {
            host: host.to_string(),
            path: "/".to_string(),
            tls: true,
            sni: None,
        }
    }
}

/// A TLS certificate, reduced to the fields the prefilter checks:
/// subject names and whether a trusted CA signed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlsCertificate {
    /// Common name.
    pub common_name: String,
    /// Subject alternative names (may contain wildcards like
    /// `*.cdn.example`).
    pub san: Vec<String>,
    /// Whether the chain validates against the trusted roots. Phishing
    /// hosts present self-signed certs (`false`).
    pub valid_chain: bool,
}

impl TlsCertificate {
    /// A CA-signed certificate for one name.
    pub fn valid_for(name: &str) -> Self {
        TlsCertificate {
            common_name: name.to_string(),
            san: vec![name.to_string()],
            valid_chain: true,
        }
    }

    /// A self-signed certificate (phishing hosts, Sec. 4.3).
    pub fn self_signed(name: &str) -> Self {
        TlsCertificate {
            common_name: name.to_string(),
            san: vec![name.to_string()],
            valid_chain: false,
        }
    }

    /// Whether this certificate covers `domain`, honoring single-label
    /// wildcards.
    pub fn covers(&self, domain: &str) -> bool {
        let d = domain.to_ascii_lowercase();
        std::iter::once(&self.common_name)
            .chain(self.san.iter())
            .any(|n| {
                let n = n.to_ascii_lowercase();
                if let Some(suffix) = n.strip_prefix("*.") {
                    // Wildcard matches exactly one extra label.
                    d.strip_suffix(suffix)
                        .map(|head| {
                            head.ends_with('.') && head[..head.len() - 1].split('.').count() == 1
                        })
                        .unwrap_or(false)
                } else {
                    n == d
                }
            })
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Redirect target (`Location:`), if any.
    pub location: Option<String>,
    /// Response body.
    pub body: String,
    /// Certificate presented during the TLS handshake (TLS requests only).
    pub certificate: Option<TlsCertificate>,
}

impl HttpResponse {
    /// A 200 response with `body`.
    pub fn ok(body: impl Into<String>) -> Self {
        HttpResponse {
            status: 200,
            location: None,
            body: body.into(),
            certificate: None,
        }
    }

    /// A 302 redirect to `to`.
    pub fn redirect(to: impl Into<String>) -> Self {
        HttpResponse {
            status: 302,
            location: Some(to.into()),
            body: String::new(),
            certificate: None,
        }
    }

    /// An error response with `status`.
    pub fn error(status: u16, body: impl Into<String>) -> Self {
        HttpResponse {
            status,
            location: None,
            body: body.into(),
            certificate: None,
        }
    }

    /// Attach the TLS certificate presented on the handshake.
    pub fn with_certificate(mut self, cert: TlsCertificate) -> Self {
        self.certificate = Some(cert);
        self
    }
}

/// Mail protocols probed for the MX domain set (Sec. 3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MailProto {
    /// Simple Mail Transfer Protocol (port 25).
    Smtp,
    /// IMAP4 (port 143).
    Imap,
    /// POP3 (port 110).
    Pop3,
}

impl MailProto {
    /// Conventional port.
    pub fn port(self) -> u16 {
        match self {
            MailProto::Smtp => 25,
            MailProto::Imap => 143,
            MailProto::Pop3 => 110,
        }
    }
}

/// A TCP-level request the simulator models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpRequest {
    /// Connect and read the protocol banner (FTP 21, SSH 22, Telnet 23 …).
    BannerProbe,
    /// An HTTP(S) exchange.
    Http(HttpRequest),
    /// Connect to a mail service and read its greeting banner.
    MailProbe(MailProto),
}

/// A TCP-level response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpResponse {
    /// A service greeting banner.
    Banner(String),
    /// An HTTP exchange result.
    Http(HttpResponse),
    /// A mail-service greeting.
    MailBanner(String),
}

impl TcpResponse {
    /// The HTTP response, if this was an HTTP exchange.
    pub fn as_http(&self) -> Option<&HttpResponse> {
        match self {
            TcpResponse::Http(r) => Some(r),
            _ => None,
        }
    }

    /// The banner text, if this was a banner or mail probe.
    pub fn as_banner(&self) -> Option<&str> {
        match self {
            TcpResponse::Banner(b) => Some(b),
            TcpResponse::MailBanner(b) => Some(b),
            _ => None,
        }
    }
}

/// TCP connection failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// Nothing bound to the destination address (or filtered en route).
    Unreachable,
    /// Host is up but the port is closed.
    Refused,
    /// The connection timed out (simulated loss).
    Timeout,
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Unreachable => write!(f, "destination unreachable"),
            TcpError::Refused => write!(f, "connection refused"),
            TcpError::Timeout => write!(f, "connection timed out"),
        }
    }
}

impl std::error::Error for TcpError {}

/// A simulated host. One instance may be bound to several IPs
/// (multi-homing) or renumbered over time (churn).
pub trait Host {
    /// Handle an incoming UDP datagram.
    fn on_udp(&mut self, ctx: &mut HostCtx<'_>, dgram: &Datagram);

    /// Handle a TCP request on `port`. `None` means the port is closed
    /// (connection refused).
    fn on_tcp(
        &mut self,
        now: SimTime,
        local_ip: Ipv4Addr,
        port: u16,
        req: &TcpRequest,
    ) -> Option<TcpResponse> {
        let _ = (now, local_ip, port, req);
        None
    }
}

/// A host that drops everything — unallocated address space.
pub struct NullHost;

impl Host for NullHost {
    fn on_udp(&mut self, _ctx: &mut HostCtx<'_>, _dgram: &Datagram) {}
}

/// Convenience: a host wrapping a closure, for tests.
pub struct FnHost<F>(pub F)
where
    F: FnMut(&mut HostCtx<'_>, &Datagram);

impl<F> Host for FnHost<F>
where
    F: FnMut(&mut HostCtx<'_>, &Datagram),
{
    fn on_udp(&mut self, ctx: &mut HostCtx<'_>, dgram: &Datagram) {
        (self.0)(ctx, dgram);
    }
}

/// Echo host used by tests and the quickstart example.
pub struct EchoHost;

impl Host for EchoHost {
    fn on_udp(&mut self, ctx: &mut HostCtx<'_>, dgram: &Datagram) {
        let payload: Bytes = dgram.payload.clone();
        ctx.send_udp(dgram.reply_with(payload));
    }

    fn on_tcp(
        &mut self,
        _now: SimTime,
        _local_ip: Ipv4Addr,
        port: u16,
        req: &TcpRequest,
    ) -> Option<TcpResponse> {
        match (port, req) {
            (7, TcpRequest::BannerProbe) => Some(TcpResponse::Banner("echo".into())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_coverage() {
        let c = TlsCertificate::valid_for("www.bank.example");
        assert!(c.covers("www.bank.example"));
        assert!(c.covers("WWW.BANK.EXAMPLE"));
        assert!(!c.covers("bank.example"));

        let wild = TlsCertificate {
            common_name: "*.cdn.example".into(),
            san: vec!["*.cdn.example".into(), "cdn.example".into()],
            valid_chain: true,
        };
        assert!(wild.covers("edge1.cdn.example"));
        assert!(wild.covers("cdn.example"));
        assert!(!wild.covers("a.b.cdn.example"), "wildcard is single-label");
        assert!(!wild.covers("cdn.example.evil"));
    }

    #[test]
    fn self_signed_flagged() {
        assert!(!TlsCertificate::self_signed("paypal.example").valid_chain);
    }

    #[test]
    fn mail_ports() {
        assert_eq!(MailProto::Smtp.port(), 25);
        assert_eq!(MailProto::Imap.port(), 143);
        assert_eq!(MailProto::Pop3.port(), 110);
    }

    #[test]
    fn response_constructors() {
        assert_eq!(HttpResponse::ok("x").status, 200);
        assert_eq!(
            HttpResponse::redirect("http://a/").location.unwrap(),
            "http://a/"
        );
        assert_eq!(HttpResponse::error(503, "").status, 503);
    }
}
