//! The event-driven network core.

use crate::faults::{FaultPlan, FaultState, FaultStats, UdpFault};
use crate::host::{Host, HostCtx, TcpError, TcpRequest, TcpResponse};
use crate::packet::Datagram;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::net::Ipv4Addr;

/// Identifier of a simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Handle of a measurement socket (used by scanners — endpoints that
/// are driven from outside the simulation rather than by a [`Host`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SocketHandle(pub(crate) u32);

/// Which traffic a network filter drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterDirection {
    /// Drop traffic destined *to* the range (ingress filtering).
    Inbound,
    /// Drop traffic originating *from* the range (egress filtering).
    Outbound,
    /// Drop both directions.
    Both,
}

/// An on-path observer that can inject packets in response to traffic it
/// sees — the Great Firewall model. Returned tuples are
/// `(delay_ms, datagram)`; injected datagrams are delivered directly
/// (the injector is on-path, so it wins races against end-to-end paths
/// when its delay is smaller).
pub trait PathObserver {
    /// Observe a datagram at send time; return `(delay_ms, datagram)`
    /// injections to deliver.
    fn on_transit(&mut self, now: SimTime, dgram: &Datagram) -> Vec<(u64, Datagram)>;
}

/// Tunables for the transport model.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Seed for all deterministic pseudo-random decisions.
    pub seed: u64,
    /// Probability that a UDP datagram is lost en route.
    pub udp_loss: f64,
    /// One-way path latency range in milliseconds; the concrete value is
    /// a deterministic function of the (src /16, dst /16) pair.
    pub latency_ms: (u64, u64),
    /// Probability that a TCP request times out.
    pub tcp_loss: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            seed: 0x60176,
            udp_loss: 0.01,
            latency_ms: (10, 180),
            tcp_loss: 0.005,
        }
    }
}

/// Counters exposed for tests and the politeness ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// UDP datagrams handed to the transport.
    pub udp_sent: u64,
    /// Datagrams delivered to a host or socket.
    pub udp_delivered: u64,
    /// Datagrams dropped by the loss model.
    pub udp_lost: u64,
    /// Datagrams dropped by active filters.
    pub udp_filtered: u64,
    /// Datagrams addressed to unbound space.
    pub udp_unbound: u64,
    /// Datagrams injected by on-path observers.
    pub injected: u64,
    /// Synchronous TCP requests issued.
    pub tcp_queries: u64,
}

struct Filter {
    lo: u32,
    hi: u32,
    direction: FilterDirection,
    active_from: SimTime,
    /// When set, the filter only applies to traffic whose *other*
    /// endpoint falls in this range — e.g. a network that blocks one
    /// scanning /8 but is otherwise reachable (Sec. 2.3, explanation i).
    peer: Option<(u32, u32)>,
}

struct SocketState {
    queue: VecDeque<(SimTime, Datagram)>,
}

/// Pre-fetched global-registry handles. The hot path only bumps the
/// plain [`NetStats`] fields the simulator keeps anyway; the shared
/// atomic counters are updated in bulk — deltas since the last flush —
/// at the end of each event-loop run and TCP query, so instrumentation
/// adds no per-packet cost.
struct NetTelemetry {
    udp_sent: telemetry::Counter,
    udp_delivered: telemetry::Counter,
    udp_lost: telemetry::Counter,
    udp_filtered: telemetry::Counter,
    udp_unbound: telemetry::Counter,
    injected: telemetry::Counter,
    tcp_queries: telemetry::Counter,
    events_dispatched: telemetry::Counter,
    run_to_idle_calls: telemetry::Counter,
    queue_depth_max: telemetry::Gauge,
    fault_burst_drops: telemetry::Counter,
    fault_outage_drops: telemetry::Counter,
    fault_flap_drops: telemetry::Counter,
    fault_rate_limit_drops: telemetry::Counter,
    fault_latency_spiked: telemetry::Counter,
    /// Totals already flushed to the shared counters; each flush adds
    /// only what accumulated since. Seeded with the network's stats at
    /// attach time so re-enabling instrumentation does not double-count.
    synced: NetStats,
    synced_dispatched: u64,
    synced_queue_max: u64,
    synced_faults: FaultStats,
}

impl NetTelemetry {
    fn new(
        baseline: NetStats,
        dispatched: u64,
        queue_max: u64,
        faults: FaultStats,
    ) -> NetTelemetry {
        let reg = telemetry::global();
        NetTelemetry {
            udp_sent: reg.counter("netsim.udp_sent"),
            udp_delivered: reg.counter("netsim.udp_delivered"),
            udp_lost: reg.counter("netsim.udp_lost"),
            udp_filtered: reg.counter("netsim.udp_filtered"),
            udp_unbound: reg.counter("netsim.udp_unbound"),
            injected: reg.counter("netsim.injected"),
            tcp_queries: reg.counter("netsim.tcp_queries"),
            events_dispatched: reg.counter("netsim.events_dispatched"),
            run_to_idle_calls: reg.counter("netsim.run_to_idle_calls"),
            queue_depth_max: reg.gauge("netsim.queue_depth_max"),
            fault_burst_drops: reg.counter("netsim.faults.burst_drops"),
            fault_outage_drops: reg.counter("netsim.faults.outage_drops"),
            fault_flap_drops: reg.counter("netsim.faults.flap_drops"),
            fault_rate_limit_drops: reg.counter("netsim.faults.rate_limit_drops"),
            fault_latency_spiked: reg.counter("netsim.faults.latency_spiked"),
            synced: baseline,
            synced_dispatched: dispatched,
            synced_queue_max: queue_max,
            synced_faults: faults,
        }
    }

    fn flush(&mut self, stats: NetStats, dispatched: u64, queue_max: u64, faults: FaultStats) {
        self.udp_sent.add(stats.udp_sent - self.synced.udp_sent);
        self.udp_delivered
            .add(stats.udp_delivered - self.synced.udp_delivered);
        self.udp_lost.add(stats.udp_lost - self.synced.udp_lost);
        self.udp_filtered
            .add(stats.udp_filtered - self.synced.udp_filtered);
        self.udp_unbound
            .add(stats.udp_unbound - self.synced.udp_unbound);
        self.injected.add(stats.injected - self.synced.injected);
        self.tcp_queries
            .add(stats.tcp_queries - self.synced.tcp_queries);
        self.events_dispatched
            .add(dispatched - self.synced_dispatched);
        if queue_max > self.synced_queue_max {
            self.queue_depth_max.set_max(queue_max as f64);
            self.synced_queue_max = queue_max;
        }
        self.fault_burst_drops.add(
            faults
                .burst_drops
                .saturating_sub(self.synced_faults.burst_drops),
        );
        self.fault_outage_drops.add(
            faults
                .outage_drops
                .saturating_sub(self.synced_faults.outage_drops),
        );
        self.fault_flap_drops.add(
            faults
                .flap_drops
                .saturating_sub(self.synced_faults.flap_drops),
        );
        self.fault_rate_limit_drops.add(
            faults
                .rate_limit_drops
                .saturating_sub(self.synced_faults.rate_limit_drops),
        );
        self.fault_latency_spiked.add(
            faults
                .latency_spiked
                .saturating_sub(self.synced_faults.latency_spiked),
        );
        self.synced = stats;
        self.synced_dispatched = dispatched;
        self.synced_faults = faults;
    }
}

struct Event {
    at: SimTime,
    seq: u64,
    dgram: Datagram,
}

// Order events by (time, seq) — BinaryHeap is a max-heap, so wrap in
// Reverse at the call sites.
impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulated network.
pub struct Network {
    cfg: NetworkConfig,
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    hosts: Vec<Box<dyn Host>>,
    bindings: HashMap<Ipv4Addr, HostId>,
    host_ips: Vec<Vec<Ipv4Addr>>,
    sockets: Vec<SocketState>,
    socket_bindings: HashMap<(Ipv4Addr, u16), u32>,
    injectors: Vec<Box<dyn PathObserver>>,
    filters: Vec<Filter>,
    faults: Option<FaultState>,
    stats: NetStats,
    telemetry: Option<NetTelemetry>,
    events_dispatched: u64,
    queue_depth_max: u64,
    scratch: Vec<(u64, Datagram)>,
}

impl Network {
    /// A fresh, empty network.
    pub fn new(cfg: NetworkConfig) -> Self {
        Network {
            cfg,
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            hosts: Vec::new(),
            bindings: HashMap::new(),
            host_ips: Vec::new(),
            sockets: Vec::new(),
            socket_bindings: HashMap::new(),
            injectors: Vec::new(),
            filters: Vec::new(),
            faults: None,
            stats: NetStats::default(),
            telemetry: Some(NetTelemetry::new(
                NetStats::default(),
                0,
                0,
                FaultStats::default(),
            )),
            events_dispatched: 0,
            queue_depth_max: 0,
            scratch: Vec::new(),
        }
    }

    /// Enable or disable global-registry instrumentation for this
    /// network. On by default; the overhead benchmark turns it off to
    /// measure the uninstrumented baseline. [`NetStats`] counters are
    /// unaffected either way.
    pub fn set_instrumentation(&mut self, on: bool) {
        self.telemetry = if on {
            Some(NetTelemetry::new(
                self.stats,
                self.events_dispatched,
                self.queue_depth_max,
                self.fault_stats(),
            ))
        } else {
            None
        };
    }

    /// Install (or replace) a fault-injection plan. A no-op plan is
    /// equivalent to removing fault injection entirely — the hot path
    /// pays nothing. Fault counters survive plan changes so telemetry
    /// deltas stay monotone.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let stats = self.fault_stats();
        self.faults = if plan.is_noop() {
            None
        } else {
            Some(FaultState::new(plan, stats))
        };
    }

    /// Counters of injected faults so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock without processing (no events may be pending
    /// before `t`; events before `t` are still processed first on the
    /// next run call). Useful to jump between weekly scans.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    // ---- topology -------------------------------------------------

    /// Register a host behaviour. The host starts with no IP bindings.
    pub fn add_host(&mut self, host: Box<dyn Host>) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(host);
        self.host_ips.push(Vec::new());
        id
    }

    /// Bind `ip` to `host`, displacing any previous binding of that IP.
    pub fn bind_ip(&mut self, ip: Ipv4Addr, host: HostId) {
        assert!((host.0 as usize) < self.hosts.len(), "unknown host");
        if let Some(prev) = self.bindings.insert(ip, host) {
            if prev != host {
                self.host_ips[prev.0 as usize].retain(|&i| i != ip);
            }
        }
        let ips = &mut self.host_ips[host.0 as usize];
        if !ips.contains(&ip) {
            ips.push(ip);
        }
    }

    /// Remove the binding of `ip`, if any.
    pub fn unbind_ip(&mut self, ip: Ipv4Addr) {
        if let Some(host) = self.bindings.remove(&ip) {
            self.host_ips[host.0 as usize].retain(|&i| i != ip);
        }
    }

    /// Host currently bound to `ip`.
    pub fn host_at(&self, ip: Ipv4Addr) -> Option<HostId> {
        self.bindings.get(&ip).copied()
    }

    /// IPs currently bound to `host`.
    pub fn ips_of(&self, host: HostId) -> &[Ipv4Addr] {
        &self.host_ips[host.0 as usize]
    }

    /// Number of bound IPs.
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    /// Mutable access to a host behaviour (world evolution hooks).
    pub fn host_mut(&mut self, host: HostId) -> &mut dyn Host {
        &mut *self.hosts[host.0 as usize]
    }

    /// Install an on-path observer.
    pub fn add_injector(&mut self, injector: Box<dyn PathObserver>) {
        self.injectors.push(injector);
    }

    /// Install a network filter over the inclusive range `[lo, hi]`,
    /// active from `active_from` onwards. Models ISPs introducing DNS
    /// ingress/egress filtering mid-study (Sec. 2.3).
    pub fn add_filter(
        &mut self,
        lo: Ipv4Addr,
        hi: Ipv4Addr,
        direction: FilterDirection,
        active_from: SimTime,
    ) {
        self.filters.push(Filter {
            lo: u32::from(lo),
            hi: u32::from(hi),
            direction,
            active_from,
            peer: None,
        });
    }

    /// Install a filter that drops traffic between `[lo, hi]` and the
    /// peer range `[peer_lo, peer_hi]` only — e.g. an ISP blacklisting a
    /// scanner's /8 while staying reachable from everywhere else.
    pub fn add_pair_filter(
        &mut self,
        lo: Ipv4Addr,
        hi: Ipv4Addr,
        peer_lo: Ipv4Addr,
        peer_hi: Ipv4Addr,
        active_from: SimTime,
    ) {
        self.filters.push(Filter {
            lo: u32::from(lo),
            hi: u32::from(hi),
            direction: FilterDirection::Both,
            active_from,
            peer: Some((u32::from(peer_lo), u32::from(peer_hi))),
        });
    }

    // ---- measurement sockets --------------------------------------

    /// Open a measurement socket bound to `(ip, port)`.
    pub fn open_socket(&mut self, ip: Ipv4Addr, port: u16) -> SocketHandle {
        let id = self.sockets.len() as u32;
        self.sockets.push(SocketState {
            queue: VecDeque::new(),
        });
        self.socket_bindings.insert((ip, port), id);
        SocketHandle(id)
    }

    /// Close a measurement socket: unbinds its address and drops any
    /// queued datagrams. Campaigns close their port blocks so long
    /// multi-scan experiments do not accumulate dead queues.
    pub fn close_socket(&mut self, sock: SocketHandle) {
        self.socket_bindings.retain(|_, &mut id| id != sock.0);
        if let Some(state) = self.sockets.get_mut(sock.0 as usize) {
            state.queue.clear();
            state.queue.shrink_to_fit();
        }
    }

    /// Send a datagram (from a measurement socket or any synthesized
    /// source) at the current time.
    pub fn send_udp(&mut self, dgram: Datagram) {
        self.send_udp_at(dgram, self.now);
    }

    /// Send a datagram at a given (future) time.
    pub fn send_udp_at(&mut self, dgram: Datagram, at: SimTime) {
        let at = at.max(self.now);
        self.stats.udp_sent += 1;

        // On-path observers see the packet (and may inject).
        let mut injections: Vec<(u64, Datagram)> = Vec::new();
        for inj in &mut self.injectors {
            injections.extend(inj.on_transit(at, &dgram));
        }
        for (delay, injected) in injections {
            self.stats.injected += 1;
            self.schedule(injected, at + delay);
        }

        // Egress/ingress filtering at send time.
        if self.filtered(&dgram, at) {
            self.stats.udp_filtered += 1;
            return;
        }

        // Dark space: nothing is bound at the destination, so the
        // packet can never be observed. Account for it immediately
        // instead of paying heap scheduling plus a later dead
        // delivery — enumeration sweeps hit mostly unbound space,
        // making this the hottest branch of a full scan.
        if !self.bindings.contains_key(&dgram.dst_ip)
            && !self
                .socket_bindings
                .contains_key(&(dgram.dst_ip, dgram.dst_port))
        {
            self.stats.udp_unbound += 1;
            return;
        }

        // Loss. The roll is keyed on the datagram's flow identity
        // (send time, endpoints, payload) rather than a global send
        // counter, so a packet's fate never depends on how much other
        // traffic the network carried before it — campaigns sharing a
        // network stay mutually independent.
        let key = flow_key(at, &dgram);

        // Injected faults sit between the dark-space fast path and the
        // i.i.d. loss roll: they only ever touch traffic that could
        // otherwise be observed, and the base loss roll below consumes
        // the same hash stream whether or not a plan is installed.
        let mut fault_latency = 0u64;
        if let Some(fs) = &mut self.faults {
            match fs.udp_fault(at, dgram.src_ip, dgram.dst_ip, dgram.dst_port, key) {
                UdpFault::Drop(cause) => {
                    self.stats.udp_lost += 1;
                    if telemetry::recorder::enabled() {
                        telemetry::recorder::drop_fault(
                            u32::from(dgram.src_ip),
                            u32::from(dgram.dst_ip),
                            dgram.dst_port,
                            cause.as_str(),
                            at.millis(),
                        );
                    }
                    return;
                }
                UdpFault::Deliver { extra_ms } => fault_latency = extra_ms,
            }
        }

        let roll = mix64(self.cfg.seed, LOSS_CHANNEL, key) as f64 / u64::MAX as f64;
        if roll < self.cfg.udp_loss {
            self.stats.udp_lost += 1;
            if telemetry::recorder::enabled() {
                telemetry::recorder::drop_fault(
                    u32::from(dgram.src_ip),
                    u32::from(dgram.dst_ip),
                    dgram.dst_port,
                    "loss",
                    at.millis(),
                );
            }
            return;
        }

        let latency = self.path_latency(dgram.src_ip, dgram.dst_ip, key) + fault_latency;
        self.schedule(dgram, at + latency);
    }

    fn schedule(&mut self, dgram: Datagram, at: SimTime) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            at,
            seq: self.seq,
            dgram,
        }));
        self.queue_depth_max = self.queue_depth_max.max(self.events.len() as u64);
    }

    /// Receive the next datagram queued on a socket.
    pub fn recv(&mut self, sock: SocketHandle) -> Option<(SimTime, Datagram)> {
        self.sockets[sock.0 as usize].queue.pop_front()
    }

    /// Drain all queued datagrams on a socket.
    pub fn recv_all(&mut self, sock: SocketHandle) -> Vec<(SimTime, Datagram)> {
        self.sockets[sock.0 as usize].queue.drain(..).collect()
    }

    // ---- event loop ------------------------------------------------

    /// Process all events up to and including time `t`, then set the
    /// clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.at > t {
                break;
            }
            let Reverse(ev) = self.events.pop().unwrap();
            self.now = ev.at;
            self.events_dispatched += 1;
            self.deliver(ev.dgram);
        }
        self.now = self.now.max(t);
        self.flush_telemetry();
    }

    /// Push the deltas accumulated in the plain counters since the last
    /// flush out to the shared telemetry handles. Called at event-loop
    /// quiescent points, never per packet.
    fn flush_telemetry(&mut self) {
        let (stats, dispatched, queue_max) =
            (self.stats, self.events_dispatched, self.queue_depth_max);
        let faults = self.faults.as_ref().map(|f| f.stats).unwrap_or_default();
        if let Some(t) = &mut self.telemetry {
            t.flush(stats, dispatched, queue_max, faults);
        }
    }

    /// Process events until the queue is empty or the clock passes
    /// `deadline`. Returns the number of delivered datagrams.
    pub fn run_to_idle(&mut self, deadline: SimTime) -> u64 {
        if let Some(t) = &self.telemetry {
            t.run_to_idle_calls.inc();
        }
        let before = self.stats.udp_delivered;
        self.run_until(deadline);
        self.stats.udp_delivered - before
    }

    fn deliver(&mut self, dgram: Datagram) {
        // Filters also apply at delivery time: a filter activated while
        // the packet was in flight still kills it, which matches how
        // border filtering behaves.
        if self.filtered(&dgram, self.now) {
            self.stats.udp_filtered += 1;
            return;
        }
        // Measurement socket?
        if let Some(&sid) = self.socket_bindings.get(&(dgram.dst_ip, dgram.dst_port)) {
            self.stats.udp_delivered += 1;
            self.sockets[sid as usize]
                .queue
                .push_back((self.now, dgram));
            return;
        }
        // Host binding?
        let Some(&host) = self.bindings.get(&dgram.dst_ip) else {
            self.stats.udp_unbound += 1;
            return;
        };
        self.stats.udp_delivered += 1;
        self.scratch.clear();
        let mut outgoing = std::mem::take(&mut self.scratch);
        {
            let mut ctx = HostCtx {
                now: self.now,
                local_ip: dgram.dst_ip,
                outgoing: &mut outgoing,
            };
            self.hosts[host.0 as usize].on_udp(&mut ctx, &dgram);
        }
        let now = self.now;
        for (delay, out) in outgoing.drain(..) {
            self.send_udp_at(out, now + delay);
        }
        self.scratch = outgoing;
    }

    // ---- synchronous TCP --------------------------------------------

    /// Issue a TCP request to `(dst_ip, port)` at the current simulated
    /// time. Synchronous: the result reflects the binding state *now*.
    pub fn tcp_query(
        &mut self,
        dst_ip: Ipv4Addr,
        port: u16,
        req: &TcpRequest,
    ) -> Result<TcpResponse, TcpError> {
        self.stats.tcp_queries += 1;
        self.flush_telemetry();
        let probe = Datagram::new(Ipv4Addr::new(0, 0, 0, 0), 0, dst_ip, port, &b""[..]);
        if self.filtered(&probe, self.now) {
            return Err(TcpError::Unreachable);
        }
        // Keyed on (time, target, request) like the UDP loss roll, so
        // concurrent campaigns cannot shift each other's TCP outcomes.
        let key = tcp_key(self.now, dst_ip, port, req);
        let now = self.now;
        if let Some(fs) = &mut self.faults {
            if let Some(err) = fs.tcp_fault(now, dst_ip, key) {
                return Err(err);
            }
        }
        let roll = mix64(self.cfg.seed, TCP_CHANNEL, key) as f64 / u64::MAX as f64;
        if roll < self.cfg.tcp_loss {
            return Err(TcpError::Timeout);
        }
        let Some(&host) = self.bindings.get(&dst_ip) else {
            return Err(TcpError::Unreachable);
        };
        let now = self.now;
        match self.hosts[host.0 as usize].on_tcp(now, dst_ip, port, req) {
            Some(resp) => Ok(resp),
            None => Err(TcpError::Refused),
        }
    }

    // ---- internals ---------------------------------------------------

    fn filtered(&self, dgram: &Datagram, at: SimTime) -> bool {
        let src = u32::from(dgram.src_ip);
        let dst = u32::from(dgram.dst_ip);
        self.filters.iter().any(|f| {
            if at < f.active_from {
                return false;
            }
            let range_hit = |v: u32| (f.lo..=f.hi).contains(&v);
            let dir_hit = match f.direction {
                FilterDirection::Inbound => range_hit(dst),
                FilterDirection::Outbound => range_hit(src),
                FilterDirection::Both => range_hit(dst) || range_hit(src),
            };
            if !dir_hit {
                return false;
            }
            match f.peer {
                None => true,
                Some((plo, phi)) => {
                    // The endpoint *not* matched by the range must fall
                    // into the peer range for the filter to apply.
                    let other = if range_hit(dst) { src } else { dst };
                    (plo..=phi).contains(&other)
                }
            }
        })
    }

    fn path_latency(&self, src: Ipv4Addr, dst: Ipv4Addr, key: u64) -> u64 {
        let (lo, hi) = self.cfg.latency_ms;
        if hi <= lo {
            return lo;
        }
        // Stable per /16-pair base latency + small per-packet jitter,
        // keyed on the same flow identity as the loss roll.
        let a = u32::from(src) >> 16;
        let b = u32::from(dst) >> 16;
        let base = mix64(self.cfg.seed, a as u64, b as u64) % (hi - lo);
        let jitter = mix64(self.cfg.seed, JITTER_CHANNEL, key) % 5;
        lo + base + jitter
    }
}

/// SplitMix64-style mixing of three words — the deterministic source of
/// all per-packet randomness (shared with the fault layer).
pub(crate) fn mix64(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.wrapping_mul(0xbf58476d1ce4e5b9));
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58476d1ce4e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Channel discriminators keeping loss, jitter, and TCP rolls mutually
/// independent even when drawn from the same flow key.
const LOSS_CHANNEL: u64 = 0x1055;
const JITTER_CHANNEL: u64 = 0x117e4;
const TCP_CHANNEL: u64 = 0x7c9;

/// A datagram's deterministic flow identity: send time, endpoints, and
/// payload. Two sends are keyed identically only if they are the same
/// packet sent at the same instant — so per-packet randomness depends
/// on the packet alone, never on unrelated traffic.
fn flow_key(at: SimTime, d: &Datagram) -> u64 {
    let ends = ((u32::from(d.src_ip) as u64) << 32) | u32::from(d.dst_ip) as u64;
    let ports = ((d.src_port as u64) << 16) | d.dst_port as u64;
    mix64(at.millis(), ends, mix64(ports, fnv64(&d.payload), 0))
}

/// Flow identity of a TCP exchange: time, target endpoint, and the
/// request's content.
fn tcp_key(now: SimTime, dst: Ipv4Addr, port: u16, req: &TcpRequest) -> u64 {
    let which = match req {
        TcpRequest::BannerProbe => 1,
        TcpRequest::Http(h) => {
            let sni = h.sni.as_deref().map_or(0, |s| fnv64(s.as_bytes()));
            mix64(
                fnv64(h.host.as_bytes()),
                fnv64(h.path.as_bytes()),
                ((h.tls as u64) << 1) | 2,
            )
            .wrapping_add(sni)
        }
        TcpRequest::MailProbe(p) => match p {
            crate::host::MailProto::Smtp => 3,
            crate::host::MailProto::Imap => 4,
            crate::host::MailProto::Pop3 => 5,
        },
    };
    mix64(
        now.millis(),
        ((u32::from(dst) as u64) << 16) | port as u64,
        which,
    )
}

/// FNV-1a over a byte slice, for hashing payloads into flow keys.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{EchoHost, FnHost};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn lossless() -> NetworkConfig {
        NetworkConfig {
            seed: 1,
            udp_loss: 0.0,
            latency_ms: (5, 50),
            tcp_loss: 0.0,
        }
    }

    #[test]
    fn udp_round_trip_via_echo_host() {
        let mut net = Network::new(lossless());
        let h = net.add_host(Box::new(EchoHost));
        net.bind_ip(ip("9.9.9.9"), h);
        let sock = net.open_socket(ip("100.0.0.1"), 40000);
        net.send_udp(Datagram::new(
            ip("100.0.0.1"),
            40000,
            ip("9.9.9.9"),
            53,
            &b"ping"[..],
        ));
        net.run_until(SimTime::from_secs(5));
        let (at, reply) = net.recv(sock).expect("echo reply");
        assert_eq!(&reply.payload[..], b"ping");
        assert_eq!(reply.src_ip, ip("9.9.9.9"));
        assert!(at.millis() >= 10, "two path traversals take time");
        assert!(net.recv(sock).is_none());
    }

    #[test]
    fn unbound_ip_drops_silently() {
        let mut net = Network::new(lossless());
        let sock = net.open_socket(ip("100.0.0.1"), 40000);
        net.send_udp(Datagram::new(
            ip("100.0.0.1"),
            40000,
            ip("8.8.8.8"),
            53,
            &b"x"[..],
        ));
        net.run_until(SimTime::from_secs(5));
        assert!(net.recv(sock).is_none());
        assert_eq!(net.stats().udp_unbound, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = NetworkConfig {
                seed,
                udp_loss: 0.3,
                ..Default::default()
            };
            let mut net = Network::new(cfg);
            let h = net.add_host(Box::new(EchoHost));
            net.bind_ip(ip("9.9.9.9"), h);
            let sock = net.open_socket(ip("100.0.0.1"), 40000);
            for i in 0..200u16 {
                net.send_udp(Datagram::new(
                    ip("100.0.0.1"),
                    40000,
                    ip("9.9.9.9"),
                    53,
                    i.to_be_bytes().to_vec(),
                ));
            }
            net.run_until(SimTime::from_secs(30));
            net.recv_all(sock)
                .into_iter()
                .map(|(t, d)| (t, d.payload.to_vec()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn loss_rate_roughly_honored() {
        let mut cfg = lossless();
        cfg.udp_loss = 0.5;
        let mut net = Network::new(cfg);
        let h = net.add_host(Box::new(EchoHost));
        net.bind_ip(ip("9.9.9.9"), h);
        let sock = net.open_socket(ip("100.0.0.1"), 40000);
        for i in 0..1000u16 {
            net.send_udp(Datagram::new(
                ip("100.0.0.1"),
                40000,
                ip("9.9.9.9"),
                53,
                i.to_be_bytes().to_vec(),
            ));
        }
        net.run_until(SimTime::from_secs(60));
        // Loss applies independently to the query and the reply, so the
        // round-trip survival rate is (1-p)^2 = 0.25.
        let received = net.recv_all(sock).len();
        assert!((150..350).contains(&received), "received={received}");
        let lost = net.stats().udp_lost;
        assert!((650..850).contains(&lost), "lost={lost}");
    }

    #[test]
    fn rebinding_moves_traffic_to_new_host() {
        let mut net = Network::new(lossless());
        let a = net.add_host(Box::new(FnHost(|ctx: &mut HostCtx<'_>, d: &Datagram| {
            ctx.send_udp(d.reply_with(&b"host-a"[..]));
        })));
        let b = net.add_host(Box::new(FnHost(|ctx: &mut HostCtx<'_>, d: &Datagram| {
            ctx.send_udp(d.reply_with(&b"host-b"[..]));
        })));
        let target = ip("9.9.9.9");
        net.bind_ip(target, a);
        let sock = net.open_socket(ip("100.0.0.1"), 40000);
        net.send_udp(Datagram::new(
            ip("100.0.0.1"),
            40000,
            target,
            53,
            &b"q1"[..],
        ));
        net.run_until(SimTime::from_secs(2));
        net.bind_ip(target, b);
        assert_eq!(net.ips_of(a), &[] as &[Ipv4Addr]);
        net.send_udp(Datagram::new(
            ip("100.0.0.1"),
            40000,
            target,
            53,
            &b"q2"[..],
        ));
        net.run_until(SimTime::from_secs(4));
        let replies: Vec<_> = net
            .recv_all(sock)
            .into_iter()
            .map(|(_, d)| d.payload.to_vec())
            .collect();
        assert_eq!(replies, vec![b"host-a".to_vec(), b"host-b".to_vec()]);
    }

    #[test]
    fn filters_activate_at_configured_time() {
        let mut net = Network::new(lossless());
        let h = net.add_host(Box::new(EchoHost));
        net.bind_ip(ip("9.9.9.9"), h);
        net.add_filter(
            ip("9.9.0.0"),
            ip("9.9.255.255"),
            FilterDirection::Inbound,
            SimTime::from_days(7),
        );
        let sock = net.open_socket(ip("100.0.0.1"), 40000);
        // Before activation: works.
        net.send_udp(Datagram::new(
            ip("100.0.0.1"),
            40000,
            ip("9.9.9.9"),
            53,
            &b"a"[..],
        ));
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.recv_all(sock).len(), 1);
        // After activation: dropped.
        net.advance_to(SimTime::from_days(8));
        net.send_udp(Datagram::new(
            ip("100.0.0.1"),
            40000,
            ip("9.9.9.9"),
            53,
            &b"b"[..],
        ));
        net.run_until(SimTime::from_days(8) + SimTime::MINUTE);
        assert!(net.recv(sock).is_none());
        assert!(net.stats().udp_filtered >= 1);
    }

    #[test]
    fn outbound_filter_blocks_replies_only() {
        let mut net = Network::new(lossless());
        let h = net.add_host(Box::new(EchoHost));
        net.bind_ip(ip("9.9.9.9"), h);
        // Egress filtering of the 9.9/16 range from t=0: queries get in,
        // responses never leave.
        net.add_filter(
            ip("9.9.0.0"),
            ip("9.9.255.255"),
            FilterDirection::Outbound,
            SimTime::ZERO,
        );
        let sock = net.open_socket(ip("100.0.0.1"), 40000);
        net.send_udp(Datagram::new(
            ip("100.0.0.1"),
            40000,
            ip("9.9.9.9"),
            53,
            &b"a"[..],
        ));
        net.run_until(SimTime::from_secs(5));
        assert!(net.recv(sock).is_none());
        assert_eq!(
            net.stats().udp_delivered,
            1,
            "query was delivered to the host"
        );
    }

    #[test]
    fn injector_races_ahead() {
        struct Forger;
        impl PathObserver for Forger {
            fn on_transit(&mut self, _now: SimTime, d: &Datagram) -> Vec<(u64, Datagram)> {
                // Match *queries* only (port 53), like the real GFW —
                // otherwise the injector would also fire on the reply.
                if d.dst_port == 53 && &d.payload[..] == b"censored?" {
                    vec![(1, d.reply_with(&b"forged"[..]))]
                } else {
                    vec![]
                }
            }
        }
        let mut net = Network::new(lossless());
        let h = net.add_host(Box::new(EchoHost));
        net.bind_ip(ip("9.9.9.9"), h);
        net.add_injector(Box::new(Forger));
        let sock = net.open_socket(ip("100.0.0.1"), 40000);
        net.send_udp(Datagram::new(
            ip("100.0.0.1"),
            40000,
            ip("9.9.9.9"),
            53,
            &b"censored?"[..],
        ));
        net.run_until(SimTime::from_secs(5));
        let replies: Vec<_> = net
            .recv_all(sock)
            .into_iter()
            .map(|(t, d)| (t, d.payload.to_vec()))
            .collect();
        // Both the forged and the real (echoed) response arrive; the
        // forged one arrives strictly first.
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].1, b"forged".to_vec());
        assert_eq!(replies[1].1, b"censored?".to_vec());
        assert!(replies[0].0 < replies[1].0);
    }

    #[test]
    fn tcp_query_semantics() {
        let mut net = Network::new(lossless());
        let h = net.add_host(Box::new(EchoHost));
        net.bind_ip(ip("9.9.9.9"), h);
        // Open port.
        let r = net
            .tcp_query(ip("9.9.9.9"), 7, &TcpRequest::BannerProbe)
            .unwrap();
        assert_eq!(r.as_banner(), Some("echo"));
        // Closed port.
        assert_eq!(
            net.tcp_query(ip("9.9.9.9"), 80, &TcpRequest::BannerProbe),
            Err(TcpError::Refused)
        );
        // Unbound address.
        assert_eq!(
            net.tcp_query(ip("8.8.8.8"), 7, &TcpRequest::BannerProbe),
            Err(TcpError::Unreachable)
        );
    }

    #[test]
    fn event_order_is_stable_for_equal_times() {
        // Two packets sent the same tick to the same host must be
        // delivered in send order when latencies tie (same /16 pair).
        let mut net = Network::new(NetworkConfig {
            seed: 3,
            udp_loss: 0.0,
            latency_ms: (10, 10),
            tcp_loss: 0.0,
        });
        let h = net.add_host(Box::new(EchoHost));
        net.bind_ip(ip("9.9.9.9"), h);
        let sock = net.open_socket(ip("100.0.0.1"), 40000);
        for i in 0..10u8 {
            net.send_udp(Datagram::new(
                ip("100.0.0.1"),
                40000,
                ip("9.9.9.9"),
                53,
                vec![i],
            ));
        }
        net.run_until(SimTime::from_secs(5));
        let order: Vec<u8> = net
            .recv_all(sock)
            .iter()
            .map(|(_, d)| d.payload[0])
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn fault_plan_host_down_window_drops_and_is_otherwise_transparent() {
        use crate::faults::{FaultEvent, FaultPlan};
        let run = |plan: Option<FaultPlan>| {
            let mut net = Network::new(lossless());
            let h = net.add_host(Box::new(EchoHost));
            net.bind_ip(ip("9.9.9.9"), h);
            if let Some(p) = plan {
                net.set_fault_plan(p);
            }
            let sock = net.open_socket(ip("100.0.0.1"), 40000);
            for i in 0..5u64 {
                net.send_udp_at(
                    Datagram::new(
                        ip("100.0.0.1"),
                        40000,
                        ip("9.9.9.9"),
                        53,
                        i.to_be_bytes().to_vec(),
                    ),
                    SimTime::from_secs(i * 10),
                );
            }
            net.run_until(SimTime::from_secs(120));
            let got: Vec<_> = net
                .recv_all(sock)
                .into_iter()
                .map(|(t, d)| (t, d.payload.to_vec()))
                .collect();
            (got, net.fault_stats())
        };
        let (baseline, base_stats) = run(None);
        assert_eq!(baseline.len(), 5);
        assert_eq!(base_stats, crate::faults::FaultStats::default());

        // Host down over [15s, 35s): probes at 20s and 30s die, both
        // ways; everything else is byte- and time-identical.
        let down = FaultPlan {
            events: vec![FaultEvent::HostDown {
                ip: ip("9.9.9.9"),
                from: SimTime::from_secs(15),
                until: SimTime::from_secs(35),
            }],
            seed: 9,
            ..FaultPlan::none()
        };
        let (with_fault, stats) = run(Some(down));
        assert_eq!(stats.flap_drops, 2);
        let expected: Vec<_> = baseline
            .iter()
            .filter(|(t, _)| t.millis() < 15_000 || t.millis() >= 35_000)
            .cloned()
            .collect();
        assert_eq!(with_fault, expected);

        // A plan whose only event never overlaps the traffic changes
        // nothing at all — delivery times included.
        let dormant = FaultPlan {
            events: vec![FaultEvent::HostDown {
                ip: ip("9.9.9.9"),
                from: SimTime::from_days(300),
                until: SimTime::from_days(301),
            }],
            seed: 9,
            ..FaultPlan::none()
        };
        let (with_dormant, stats) = run(Some(dormant));
        assert_eq!(stats, crate::faults::FaultStats::default());
        assert_eq!(with_dormant, baseline);
    }

    #[test]
    fn fault_plan_latency_spike_event_delays_but_delivers() {
        use crate::faults::{FaultEvent, FaultPlan};
        let mut net = Network::new(lossless());
        let h = net.add_host(Box::new(EchoHost));
        net.bind_ip(ip("9.9.9.9"), h);
        net.set_fault_plan(FaultPlan {
            events: vec![FaultEvent::LatencySpike {
                lo: ip("9.9.0.0"),
                hi: ip("9.9.255.255"),
                from: SimTime::ZERO,
                until: SimTime::from_secs(60),
                extra_ms: 400,
            }],
            seed: 9,
            ..FaultPlan::none()
        });
        let sock = net.open_socket(ip("100.0.0.1"), 40000);
        net.send_udp(Datagram::new(
            ip("100.0.0.1"),
            40000,
            ip("9.9.9.9"),
            53,
            &b"ping"[..],
        ));
        net.run_until(SimTime::from_secs(5));
        let (at, reply) = net.recv(sock).expect("delayed but delivered");
        assert_eq!(&reply.payload[..], b"ping");
        // Both directions crossed the spiked prefix: ≥800ms extra.
        assert!(at.millis() >= 800, "arrived at {}", at.millis());
        assert_eq!(net.fault_stats().latency_spiked, 2);
    }
}
