//! Deterministic fault injection: correlated loss, outages, flaps,
//! latency spikes, and resolver rate limiting.
//!
//! The base transport models a *benign* Internet — flat i.i.d. loss and
//! stable per-path latency. Real scanning campaigns (Sec. 2.2, Sec. 3.1
//! of the paper) additionally survive correlated faults: loss arrives
//! in bursts, links and prefixes go down for minutes, home resolvers
//! flap mid-campaign, and busy resolvers rate-limit repeat queries. A
//! [`FaultPlan`] describes such a fault regime on the sim-time axis,
//! keyed entirely by its own seed so that:
//!
//! * every fault decision is a pure function of `(seed, entity, time)`
//!   — reruns with the same seed reproduce the same faults bit for bit;
//! * a packet's fate still never depends on unrelated traffic (the one
//!   documented exception is the stateful [`RateLimit`] token bucket,
//!   which *must* see query arrivals to model a rate limiter at all).
//!
//! The plan is applied by [`crate::Network`] between the unbound-space
//! fast path and the i.i.d. loss roll, and surfaced through telemetry
//! as the `netsim.faults.*` counter family.

use crate::network::mix64;
use crate::time::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Gilbert–Elliott two-state burst-loss model, discretized into fixed
/// time slots. Each network *path* (unordered /16 pair) runs its own
/// independent chain, so queries and their replies share burst state
/// while unrelated paths stay decorrelated.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstLoss {
    /// Per-slot probability of entering the burst (bad) state.
    pub p_enter: f64,
    /// Per-slot probability of leaving the burst state.
    pub p_exit: f64,
    /// Packet-loss probability while the path is in the burst state.
    pub loss_in_burst: f64,
    /// Slot width in milliseconds (burst granularity).
    pub slot_ms: u64,
}

impl BurstLoss {
    /// Long-run fraction of time a path spends in the burst state.
    pub fn stationary_burst_fraction(&self) -> f64 {
        self.p_enter / (self.p_enter + self.p_exit)
    }

    /// Long-run extra loss rate this model adds on top of base loss.
    pub fn stationary_loss(&self) -> f64 {
        self.stationary_burst_fraction() * self.loss_in_burst
    }
}

/// A hash-keyed field of recurring fault windows: time is cut into
/// fixed windows, and per `(entity, window)` a deterministic roll
/// decides whether a fault is active, where inside the window it
/// starts, and how long it lasts.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindows {
    /// Window width in milliseconds.
    pub window_ms: u64,
    /// Probability that a given `(entity, window)` contains a fault.
    pub rate: f64,
    /// Fault duration range `[lo, hi)` in milliseconds.
    pub duration_ms: (u64, u64),
}

/// Latency spikes: during an active window the path's one-way latency
/// grows by a deterministic extra delay instead of dropping packets.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySpikes {
    /// When and how long spikes happen (per path /16 pair).
    pub windows: FaultWindows,
    /// Extra one-way latency range `[lo, hi)` in milliseconds.
    pub extra_ms: (u64, u64),
}

/// Per-destination token-bucket rate limiter for DNS queries (UDP port
/// 53 only). This is the one *stateful* fault: a rate limiter is
/// defined by the traffic it sees, so its decisions necessarily depend
/// on query arrival order.
#[derive(Debug, Clone, PartialEq)]
pub struct RateLimit {
    /// Sustained queries per second each destination accepts.
    pub tokens_per_sec: f64,
    /// Bucket capacity (burst allowance).
    pub burst: f64,
}

/// An explicit, targeted fault on the sim-time axis. The hash-keyed
/// fields above model *statistical* regimes; events let tests and
/// scenario scripts take down a specific host or prefix at a specific
/// time.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// A single host is down (flapping) over `[from, until)`: its
    /// packets in either direction are dropped, TCP times out.
    HostDown {
        ip: Ipv4Addr,
        from: SimTime,
        until: SimTime,
    },
    /// Every address in `[lo, hi]` is unreachable over `[from, until)`.
    PrefixDown {
        lo: Ipv4Addr,
        hi: Ipv4Addr,
        from: SimTime,
        until: SimTime,
    },
    /// Paths touching `[lo, hi]` gain `extra_ms` one-way latency over
    /// `[from, until)`.
    LatencySpike {
        lo: Ipv4Addr,
        hi: Ipv4Addr,
        from: SimTime,
        until: SimTime,
        extra_ms: u64,
    },
}

/// A complete, seed-keyed description of a fault regime.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault decision (independent of the network seed).
    pub seed: u64,
    /// Correlated burst loss.
    pub burst: Option<BurstLoss>,
    /// Per-/16 link outages (both directions drop, TCP unreachable).
    pub outages: Option<FaultWindows>,
    /// Per-host flaps (both directions drop, TCP timeout).
    pub flaps: Option<FaultWindows>,
    /// Per-path latency spikes.
    pub spikes: Option<LatencySpikes>,
    /// Per-destination DNS rate limiting.
    pub rate_limit: Option<RateLimit>,
    /// Explicit targeted faults.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan that injects nothing. Installing it is equivalent to not
    /// installing a plan at all — the hot path pays zero cost.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            burst: None,
            outages: None,
            flaps: None,
            spikes: None,
            rate_limit: None,
            events: Vec::new(),
        }
    }

    /// True when the plan can never affect any packet.
    pub fn is_noop(&self) -> bool {
        self.burst.is_none()
            && self.outages.is_none()
            && self.flaps.is_none()
            && self.spikes.is_none()
            && self.rate_limit.is_none()
            && self.events.is_empty()
    }

    /// Names accepted by [`FaultPlan::named`].
    pub const PROFILES: &'static [&'static str] = &[
        "flaky",
        "bursty",
        "outage",
        "flappy",
        "ratelimited",
        "hostile",
    ];

    /// A named built-in profile, for the `repro --faults <profile>`
    /// CLI. Returns `None` for unknown names.
    pub fn named(profile: &str, seed: u64) -> Option<FaultPlan> {
        // Consumer-access burst loss tuned so that single-probe
        // round-trip coverage lands well below a 95% gate (~90%) while
        // three attempts recover >99% — the acceptance regime of the
        // chaos-smoke CI job.
        let flaky_burst = BurstLoss {
            p_enter: 0.0222,
            p_exit: 0.2,
            loss_in_burst: 0.45,
            slot_ms: 100,
        };
        let mild_burst = BurstLoss {
            p_enter: 0.0105,
            p_exit: 0.2,
            loss_in_burst: 0.30,
            slot_ms: 100,
        };
        let spikes = LatencySpikes {
            windows: FaultWindows {
                window_ms: 10 * SimTime::MINUTE,
                rate: 0.06,
                duration_ms: (20 * SimTime::SECOND, 90 * SimTime::SECOND),
            },
            extra_ms: (150, 600),
        };
        let outages = FaultWindows {
            window_ms: 2 * SimTime::HOUR,
            rate: 0.05,
            duration_ms: (3 * SimTime::MINUTE, 12 * SimTime::MINUTE),
        };
        let flaps = FaultWindows {
            window_ms: 15 * SimTime::MINUTE,
            rate: 0.10,
            duration_ms: (5 * SimTime::SECOND, 45 * SimTime::SECOND),
        };
        let rate_limit = RateLimit {
            tokens_per_sec: 5.0,
            burst: 10.0,
        };
        let mut plan = FaultPlan {
            seed: seed ^ 0xFA_017,
            ..FaultPlan::none()
        };
        match profile {
            "flaky" => {
                plan.burst = Some(flaky_burst);
                plan.spikes = Some(spikes);
            }
            "bursty" => {
                plan.burst = Some(BurstLoss {
                    p_enter: 0.0265,
                    p_exit: 0.15,
                    loss_in_burst: 0.50,
                    slot_ms: 100,
                });
            }
            "outage" => {
                plan.burst = Some(mild_burst);
                plan.outages = Some(outages);
            }
            "flappy" => {
                plan.burst = Some(mild_burst);
                plan.flaps = Some(flaps);
            }
            "ratelimited" => {
                plan.rate_limit = Some(rate_limit);
            }
            "hostile" => {
                plan.burst = Some(flaky_burst);
                plan.outages = Some(outages);
                plan.flaps = Some(flaps);
                plan.spikes = Some(spikes);
                plan.rate_limit = Some(rate_limit);
            }
            _ => return None,
        }
        Some(plan)
    }
}

/// Counters for injected faults, mirrored into telemetry as
/// `netsim.faults.*` by the network's delta-flush.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped by Gilbert–Elliott burst loss.
    pub burst_drops: u64,
    /// Packets dropped by prefix outages (field or explicit event).
    pub outage_drops: u64,
    /// Packets dropped by host flaps (field or explicit event).
    pub flap_drops: u64,
    /// DNS queries dropped by per-destination rate limiting.
    pub rate_limit_drops: u64,
    /// Packets delivered late because of a latency spike.
    pub latency_spiked: u64,
}

/// Why the fault layer dropped a datagram. Carried on
/// [`UdpFault::Drop`] so the flight recorder can tag every drop with
/// the responsible fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DropCause {
    /// Gilbert–Elliott burst loss on the path.
    Burst,
    /// Prefix outage (field window or explicit `PrefixDown` event).
    Outage,
    /// Host flap (field window or explicit `HostDown` event).
    Flap,
    /// Per-destination DNS rate limiting.
    RateLimit,
}

impl DropCause {
    /// Stable reason string, used in recorder records.
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            DropCause::Burst => "burst",
            DropCause::Outage => "outage",
            DropCause::Flap => "flap",
            DropCause::RateLimit => "rate_limit",
        }
    }
}

/// What the fault layer decided for one UDP datagram.
pub(crate) enum UdpFault {
    /// Deliver, possibly with extra one-way latency.
    Deliver { extra_ms: u64 },
    /// Drop for the tagged cause (the responsible counter has already
    /// been bumped).
    Drop(DropCause),
}

/// Gilbert–Elliott chains regenerate from the stationary distribution
/// every this many slots, bounding the walk a cold lookup has to replay
/// while keeping the state a pure function of `(seed, entity, slot)`.
const GE_REGEN: u64 = 1024;

const GE_SEG_CHANNEL: u64 = 0x6e5e6;
const GE_SLOT_CHANNEL: u64 = 0x6e510;
const GE_DROP_CHANNEL: u64 = 0x6ed40;
const OUTAGE_CHANNEL: u64 = 0x07a6e;
const FLAP_CHANNEL: u64 = 0xf1a9;
const SPIKE_CHANNEL: u64 = 0x59143;

fn unit(h: u64) -> f64 {
    h as f64 / u64::MAX as f64
}

/// Unordered /16-pair identity of a path — symmetric, so a query and
/// its reply consult the same burst/spike chain.
fn path_entity(a: Ipv4Addr, b: Ipv4Addr) -> u64 {
    let pa = (u32::from(a) >> 16) as u64;
    let pb = (u32::from(b) >> 16) as u64;
    (pa.min(pb) << 16) | pa.max(pb)
}

/// Is a window-field fault active for `entity` at `at_ms`? Active
/// windows get a hash-chosen start offset and duration inside the
/// window, so faults begin and end at irregular instants.
fn window_hit(seed: u64, channel: u64, entity: u64, at_ms: u64, w: &FaultWindows) -> Option<u64> {
    let win = at_ms / w.window_ms;
    if unit(mix64(seed ^ channel, entity, win)) >= w.rate {
        return None;
    }
    let (dlo, dhi) = w.duration_ms;
    let span = dhi.saturating_sub(dlo).max(1);
    let dur = (dlo + mix64(seed ^ channel, entity ^ 0x5eed, win) % span).min(w.window_ms);
    let room = w.window_ms - dur;
    let off = if room == 0 {
        0
    } else {
        mix64(seed ^ channel, entity.rotate_left(13), win ^ 0xFA11) % room
    };
    let t = at_ms % w.window_ms;
    (t >= off && t < off + dur).then_some(win)
}

/// Runtime state for an installed [`FaultPlan`]: the plan itself plus
/// chain caches, rate-limiter buckets, and fault counters.
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    /// Per-path Gilbert–Elliott cache: entity → (slot, in_burst).
    ge: HashMap<u64, (u64, bool)>,
    /// Per-destination token buckets: dst → (tokens, last_refill_ms).
    buckets: HashMap<Ipv4Addr, (f64, u64)>,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, stats: FaultStats) -> FaultState {
        FaultState {
            plan,
            ge: HashMap::new(),
            buckets: HashMap::new(),
            stats,
        }
    }

    /// Burst-chain state for `entity` at `slot`. A pure function of
    /// `(seed, entity, slot)`: chains restart from the stationary
    /// distribution at every `GE_REGEN` boundary, and the cache only
    /// short-circuits the forward walk within the current segment.
    fn ge_state(&mut self, entity: u64, slot: u64) -> bool {
        let b = self.plan.burst.as_ref().expect("burst configured");
        let seed = self.plan.seed;
        let seg_start = (slot / GE_REGEN) * GE_REGEN;
        let (mut s, mut state) = match self.ge.get(&entity) {
            Some(&(cs, cstate)) if cs >= seg_start && cs <= slot => (cs, cstate),
            _ => {
                let pi = b.stationary_burst_fraction();
                let st = unit(mix64(seed ^ GE_SEG_CHANNEL, entity, slot / GE_REGEN)) < pi;
                (seg_start, st)
            }
        };
        while s < slot {
            s += 1;
            let r = unit(mix64(seed ^ GE_SLOT_CHANNEL, entity, s));
            state = if state { r >= b.p_exit } else { r < b.p_enter };
        }
        self.ge.insert(entity, (slot, state));
        state
    }

    fn event_fault(&mut self, at: SimTime, src: Ipv4Addr, dst: Ipv4Addr) -> Option<UdpFault> {
        let mut extra = 0u64;
        for e in &self.plan.events {
            match *e {
                FaultEvent::HostDown { ip, from, until } => {
                    if at >= from && at < until && (src == ip || dst == ip) {
                        self.stats.flap_drops += 1;
                        return Some(UdpFault::Drop(DropCause::Flap));
                    }
                }
                FaultEvent::PrefixDown {
                    lo,
                    hi,
                    from,
                    until,
                } => {
                    let r = u32::from(lo)..=u32::from(hi);
                    if at >= from
                        && at < until
                        && (r.contains(&u32::from(src)) || r.contains(&u32::from(dst)))
                    {
                        self.stats.outage_drops += 1;
                        return Some(UdpFault::Drop(DropCause::Outage));
                    }
                }
                FaultEvent::LatencySpike {
                    lo,
                    hi,
                    from,
                    until,
                    extra_ms,
                } => {
                    let r = u32::from(lo)..=u32::from(hi);
                    if at >= from
                        && at < until
                        && (r.contains(&u32::from(src)) || r.contains(&u32::from(dst)))
                    {
                        extra = extra.max(extra_ms);
                    }
                }
            }
        }
        (extra > 0).then_some(UdpFault::Deliver { extra_ms: extra })
    }

    /// Decide the fate of one UDP datagram. `flow_key` is the same
    /// deterministic flow identity the base loss roll uses.
    pub(crate) fn udp_fault(
        &mut self,
        at: SimTime,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        dst_port: u16,
        flow_key: u64,
    ) -> UdpFault {
        let seed = self.plan.seed;
        let ms = at.millis();
        let mut extra_ms = 0u64;

        // Explicit events first: they exist to hit precise targets.
        match self.event_fault(at, src, dst) {
            Some(UdpFault::Drop(cause)) => return UdpFault::Drop(cause),
            Some(UdpFault::Deliver { extra_ms: e }) => extra_ms = e,
            None => {}
        }

        if let Some(w) = &self.plan.outages {
            let down = |ip: Ipv4Addr| {
                window_hit(seed, OUTAGE_CHANNEL, (u32::from(ip) >> 16) as u64, ms, w).is_some()
            };
            if down(src) || down(dst) {
                self.stats.outage_drops += 1;
                return UdpFault::Drop(DropCause::Outage);
            }
        }

        if let Some(w) = &self.plan.flaps {
            let down = |ip: Ipv4Addr| {
                window_hit(seed, FLAP_CHANNEL, u32::from(ip) as u64, ms, w).is_some()
            };
            if down(src) || down(dst) {
                self.stats.flap_drops += 1;
                return UdpFault::Drop(DropCause::Flap);
            }
        }

        // Rate limiting applies to DNS queries only (towards port 53).
        if dst_port == 53 {
            if let Some(rl) = &self.plan.rate_limit {
                let (tokens_per_sec, cap) = (rl.tokens_per_sec, rl.burst);
                let bucket = self.buckets.entry(dst).or_insert((cap, ms));
                let elapsed = ms.saturating_sub(bucket.1) as f64 / 1000.0;
                bucket.0 = (bucket.0 + elapsed * tokens_per_sec).min(cap);
                bucket.1 = ms;
                if bucket.0 < 1.0 {
                    self.stats.rate_limit_drops += 1;
                    return UdpFault::Drop(DropCause::RateLimit);
                }
                bucket.0 -= 1.0;
            }
        }

        if let Some(b) = &self.plan.burst {
            let slot = ms / b.slot_ms;
            let loss = b.loss_in_burst;
            let entity = path_entity(src, dst);
            if self.ge_state(entity, slot)
                && unit(mix64(seed ^ GE_DROP_CHANNEL, flow_key, slot)) < loss
            {
                self.stats.burst_drops += 1;
                return UdpFault::Drop(DropCause::Burst);
            }
        }

        if let Some(s) = &self.plan.spikes {
            let entity = path_entity(src, dst);
            if let Some(win) = window_hit(seed, SPIKE_CHANNEL, entity, ms, &s.windows) {
                let (elo, ehi) = s.extra_ms;
                let span = ehi.saturating_sub(elo).max(1);
                extra_ms =
                    extra_ms.max(elo + mix64(seed ^ SPIKE_CHANNEL, entity ^ 0x0FF5E7, win) % span);
            }
        }

        if extra_ms > 0 {
            self.stats.latency_spiked += 1;
        }
        UdpFault::Deliver { extra_ms }
    }

    /// Decide whether a synchronous TCP exchange with `dst` fails.
    /// Flaps map to timeouts (host silently down), outages to
    /// unreachability (path gone), bursts to timeouts.
    pub(crate) fn tcp_fault(
        &mut self,
        now: SimTime,
        dst: Ipv4Addr,
        key: u64,
    ) -> Option<crate::host::TcpError> {
        use crate::host::TcpError;
        let seed = self.plan.seed;
        let ms = now.millis();
        for e in &self.plan.events {
            match *e {
                FaultEvent::HostDown { ip, from, until } => {
                    if now >= from && now < until && dst == ip {
                        self.stats.flap_drops += 1;
                        return Some(TcpError::Timeout);
                    }
                }
                FaultEvent::PrefixDown {
                    lo,
                    hi,
                    from,
                    until,
                } => {
                    if now >= from
                        && now < until
                        && (u32::from(lo)..=u32::from(hi)).contains(&u32::from(dst))
                    {
                        self.stats.outage_drops += 1;
                        return Some(TcpError::Unreachable);
                    }
                }
                FaultEvent::LatencySpike { .. } => {}
            }
        }
        if let Some(w) = &self.plan.outages {
            if window_hit(seed, OUTAGE_CHANNEL, (u32::from(dst) >> 16) as u64, ms, w).is_some() {
                self.stats.outage_drops += 1;
                return Some(TcpError::Unreachable);
            }
        }
        if let Some(w) = &self.plan.flaps {
            if window_hit(seed, FLAP_CHANNEL, u32::from(dst) as u64, ms, w).is_some() {
                self.stats.flap_drops += 1;
                return Some(TcpError::Timeout);
            }
        }
        if let Some(b) = &self.plan.burst {
            let slot = ms / b.slot_ms;
            let loss = b.loss_in_burst;
            let entity = (u32::from(dst) >> 16) as u64;
            if self.ge_state(entity, slot) && unit(mix64(seed ^ GE_DROP_CHANNEL, key, slot)) < loss
            {
                self.stats.burst_drops += 1;
                return Some(TcpError::Timeout);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn flaky(seed: u64) -> FaultState {
        FaultState::new(
            FaultPlan::named("flaky", seed).unwrap(),
            FaultStats::default(),
        )
    }

    #[test]
    fn noop_plan_is_noop() {
        assert!(FaultPlan::none().is_noop());
        for p in FaultPlan::PROFILES {
            assert!(
                !FaultPlan::named(p, 1).unwrap().is_noop(),
                "profile {p} must inject something"
            );
        }
        assert!(FaultPlan::named("nonsense", 1).is_none());
    }

    #[test]
    fn ge_state_is_pure_regardless_of_query_order() {
        // Querying slots out of order, with and without cache reuse,
        // must give identical states: the chain is a pure function of
        // (seed, entity, slot).
        let mut a = flaky(7);
        let mut b = flaky(7);
        let slots: Vec<u64> = (0..4000).collect();
        let forward: Vec<bool> = slots.iter().map(|&s| a.ge_state(42, s)).collect();
        let sparse: Vec<bool> = slots
            .iter()
            .filter(|s| *s % 97 == 0)
            .map(|&s| b.ge_state(42, s))
            .collect();
        let expected: Vec<bool> = slots
            .iter()
            .filter(|s| *s % 97 == 0)
            .map(|&s| forward[s as usize])
            .collect();
        assert_eq!(sparse, expected);
    }

    #[test]
    fn token_bucket_allows_burst_then_throttles() {
        let plan = FaultPlan {
            rate_limit: Some(RateLimit {
                tokens_per_sec: 5.0,
                burst: 10.0,
            }),
            seed: 3,
            ..FaultPlan::none()
        };
        let mut fs = FaultState::new(plan, FaultStats::default());
        let dst: Ipv4Addr = "9.9.9.9".parse().unwrap();
        let src: Ipv4Addr = "100.0.0.1".parse().unwrap();
        let mut passed = 0;
        for i in 0..30 {
            // 30 queries in one instant: the burst allowance passes 10.
            match fs.udp_fault(SimTime(0), src, dst, 53, i) {
                UdpFault::Deliver { .. } => passed += 1,
                UdpFault::Drop(_) => {}
            }
        }
        assert_eq!(passed, 10);
        assert_eq!(fs.stats.rate_limit_drops, 20);
        // After 2 seconds, ~10 tokens have refilled.
        let mut later = 0;
        for i in 0..30 {
            match fs.udp_fault(SimTime(2000), src, dst, 53, 100 + i) {
                UdpFault::Deliver { .. } => later += 1,
                UdpFault::Drop(_) => {}
            }
        }
        assert_eq!(later, 10);
        // Replies (not port 53) are never rate limited.
        match fs.udp_fault(SimTime(2000), dst, src, 40_000, 999) {
            UdpFault::Deliver { .. } => {}
            UdpFault::Drop(_) => panic!("reply must not be rate limited"),
        }
    }

    #[test]
    fn explicit_host_down_hits_only_its_window_and_host() {
        let ip: Ipv4Addr = "9.9.9.9".parse().unwrap();
        let other: Ipv4Addr = "9.9.9.10".parse().unwrap();
        let src: Ipv4Addr = "100.0.0.1".parse().unwrap();
        let plan = FaultPlan {
            events: vec![FaultEvent::HostDown {
                ip,
                from: SimTime::from_secs(10),
                until: SimTime::from_secs(20),
            }],
            seed: 1,
            ..FaultPlan::none()
        };
        let mut fs = FaultState::new(plan, FaultStats::default());
        let is_drop = |fs: &mut FaultState, at, s, d| {
            matches!(fs.udp_fault(at, s, d, 53, 1), UdpFault::Drop(_))
        };
        assert!(!is_drop(&mut fs, SimTime::from_secs(5), src, ip));
        assert!(is_drop(&mut fs, SimTime::from_secs(15), src, ip));
        // Both directions are dead while down.
        assert!(is_drop(&mut fs, SimTime::from_secs(15), ip, src));
        assert!(!is_drop(&mut fs, SimTime::from_secs(15), src, other));
        assert!(!is_drop(&mut fs, SimTime::from_secs(25), src, ip));
        // TCP sees the flap as a timeout.
        assert_eq!(
            fs.tcp_fault(SimTime::from_secs(15), ip, 1),
            Some(crate::host::TcpError::Timeout)
        );
        assert_eq!(fs.tcp_fault(SimTime::from_secs(25), ip, 1), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The realized burst-state fraction tracks the configured
        /// stationary distribution for any seed, and reruns with the
        /// same seed reproduce the chain exactly.
        #[test]
        fn ge_stationary_fraction_and_determinism(seed in 0u64..1_000_000) {
            let mut fs = flaky(seed);
            let mut fs2 = flaky(seed);
            let pi = fs.plan.burst.as_ref().unwrap().stationary_burst_fraction();
            let slots = 100_000u64;
            let mut in_burst = 0u64;
            for s in 0..slots {
                let st = fs.ge_state(5, s);
                prop_assert_eq!(st, fs2.ge_state(5, s), "same seed must replay identically");
                in_burst += st as u64;
            }
            let frac = in_burst as f64 / slots as f64;
            prop_assert!(
                (frac - pi).abs() < 0.03,
                "stationary fraction {} vs configured {}", frac, pi
            );
        }

        /// Different paths run decorrelated chains: averaging over many
        /// entities at a single instant also recovers the stationary
        /// fraction (this is what keeps short campaigns low-variance).
        #[test]
        fn ge_cross_entity_fraction(seed in 0u64..1_000_000) {
            let mut fs = flaky(seed);
            let pi = fs.plan.burst.as_ref().unwrap().stationary_burst_fraction();
            let entities = 20_000u64;
            let in_burst: u64 = (0..entities).map(|e| fs.ge_state(e, 32) as u64).sum();
            let frac = in_burst as f64 / entities as f64;
            prop_assert!(
                (frac - pi).abs() < 0.02,
                "cross-entity fraction {} vs configured {}", frac, pi
            );
        }
    }
}
