//! UDP datagrams.

use bytes::Bytes;
use std::net::Ipv4Addr;

/// A UDP datagram in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Source address.
    pub src_ip: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination address.
    pub dst_ip: Ipv4Addr,
    /// Destination port.
    pub dst_port: u16,
    /// UDP payload.
    pub payload: Bytes,
}

impl Datagram {
    /// Construct a datagram.
    pub fn new(
        src_ip: Ipv4Addr,
        src_port: u16,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        payload: impl Into<Bytes>,
    ) -> Self {
        Datagram {
            src_ip,
            src_port,
            dst_ip,
            dst_port,
            payload: payload.into(),
        }
    }

    /// The reply skeleton: swapped endpoints, empty payload slot filled
    /// by the caller.
    pub fn reply_with(&self, payload: impl Into<Bytes>) -> Datagram {
        Datagram {
            src_ip: self.dst_ip,
            src_port: self.dst_port,
            dst_ip: self.src_ip,
            dst_port: self.src_port,
            payload: payload.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_swaps_endpoints() {
        let d = Datagram::new(
            Ipv4Addr::new(1, 2, 3, 4),
            5353,
            Ipv4Addr::new(9, 9, 9, 9),
            53,
            &b"query"[..],
        );
        let r = d.reply_with(&b"answer"[..]);
        assert_eq!(r.src_ip, Ipv4Addr::new(9, 9, 9, 9));
        assert_eq!(r.src_port, 53);
        assert_eq!(r.dst_ip, Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(r.dst_port, 5353);
        assert_eq!(&r.payload[..], b"answer");
    }
}
