//! Wire-codec throughput: every scan response passes through these.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dnswire::{Message, MessageBuilder, Name, Rcode, RecordType};
use std::net::Ipv4Addr;

fn bench_codec(c: &mut Criterion) {
    let query = MessageBuilder::query(
        0x1234,
        Name::parse("r4nd0m.0b00010a.scan.gwild.example").unwrap(),
        RecordType::A,
    )
    .build();
    let response = MessageBuilder::response_to(&query, Rcode::NoError)
        .answer_a(
            query.questions[0].qname.clone(),
            300,
            Ipv4Addr::new(198, 51, 100, 1),
        )
        .answer_a(
            query.questions[0].qname.clone(),
            300,
            Ipv4Addr::new(198, 51, 100, 2),
        )
        .build();
    let wire = response.encode();

    let mut g = c.benchmark_group("dnswire");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_response", |b| {
        b.iter(|| black_box(response.encode()))
    });
    g.bench_function("decode_response", |b| {
        b.iter(|| Message::decode(black_box(&wire)).unwrap())
    });
    g.bench_function("query_roundtrip", |b| {
        b.iter(|| {
            let w = query.encode();
            Message::decode(black_box(&w)).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
