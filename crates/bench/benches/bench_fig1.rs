//! One full Internet-wide enumeration scan (the Figure 1 engine).

use criterion::{criterion_group, criterion_main, Criterion};
use scanner::enumerate;
use worldgen::{build_world, WorldConfig};

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumeration");
    g.sample_size(10);
    g.bench_function("full_scan_tiny_world", |b| {
        b.iter_with_setup(
            || build_world(WorldConfig::tiny(9)),
            |mut world| {
                let vantage = world.scanner_ip;
                enumerate(&mut world, vantage, 1)
            },
        )
    });
    g.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
