//! UPGMA clustering throughput (the Table 5 engine) and the A-ABL2
//! linkage comparison hook.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htmlsim::distance::FeatureWeights;
use htmlsim::gen::{self, PageCtx, SiteCategory};
use htmlsim::{PageFeatures, TagInterner};

fn pages(n: usize) -> Vec<PageFeatures> {
    let mut interner = TagInterner::new();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let html = match i % 4 {
            0 => gen::legit_site(SiteCategory::Banking, &PageCtx::new("b.example", i as u64)),
            1 => gen::http_error(404, &PageCtx::new("e.example", i as u64)),
            2 => gen::parking_page("parkco", &PageCtx::new(&format!("d{i}.example"), i as u64)),
            _ => gen::router_login(
                gen::RouterVendor::ZyRouter,
                &PageCtx::new("r.local", i as u64),
            ),
        };
        out.push(PageFeatures::extract(&html, &mut interner));
    }
    out
}

fn bench_cluster(c: &mut Criterion) {
    let weights = FeatureWeights::default();
    let mut g = c.benchmark_group("cluster_pages");
    g.sample_size(10);
    for n in [50usize, 150, 400] {
        let items = pages(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &items, |b, items| {
            b.iter(|| classify::cluster_pages(items, &weights, 0.32))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
