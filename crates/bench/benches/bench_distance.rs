//! The seven-feature page distance — the inner loop of Table 5's
//! clustering — plus the Myers diff of the fine-grained stage.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use htmlsim::distance::{page_distance, FeatureWeights};
use htmlsim::gen::{self, PageCtx, SiteCategory};
use htmlsim::{diff, PageFeatures, TagInterner};

fn bench_distance(c: &mut Criterion) {
    let mut interner = TagInterner::new();
    let a = PageFeatures::extract(
        &gen::legit_site(SiteCategory::Banking, &PageCtx::new("bank.example", 1)),
        &mut interner,
    );
    let b = PageFeatures::extract(
        &gen::legit_site(SiteCategory::Alexa, &PageCtx::new("news.example", 2)),
        &mut interner,
    );
    let weights = FeatureWeights::default();

    c.bench_function("page_distance_cross_family", |bch| {
        bch.iter(|| page_distance(black_box(&a), black_box(&b), &weights))
    });

    let page = gen::legit_site(SiteCategory::Alexa, &PageCtx::new("site.example", 3));
    c.bench_function("feature_extraction", |bch| {
        let mut i = TagInterner::new();
        bch.iter(|| PageFeatures::extract(black_box(&page), &mut i))
    });

    let gt = a.tag_sequence.clone();
    let mut unk = gt.clone();
    unk.insert(gt.len() / 2, 6);
    c.bench_function("myers_tag_delta", |bch| {
        bch.iter(|| diff::tag_delta(black_box(&gt), black_box(&unk)))
    });
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
