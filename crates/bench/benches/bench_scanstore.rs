//! scanstore throughput: segment writes, diff-cursor reads, and the
//! delta-encoded format's compression ratio against naive JSON lines.
//!
//! Beyond the criterion timings printed to stdout, `main` re-measures
//! each figure single-shot and dumps a machine-readable summary to
//! `BENCH_scanstore.json` at the workspace root in the normalized
//! `goingwild.bench.v1` schema ([`bench::perf::BenchReport`]): the
//! store's own `scanstore.*` instrumentation supplies the byte/segment
//! counters and the throughput figures land in `derived`.

use bench::perf::{peak_rss_kb, BenchConfig, BenchReport};
use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use scanstore::{CampaignStore, Observation, SnapshotSink, SnapshotSource};
use std::path::{Path, PathBuf};
use std::time::Instant;

const PER_WEEK: u32 = 20_000;
const WEEKS: u32 = 8;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("gw-bench-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One week's worth of observations over a slowly drifting population:
/// ~1/7 of addresses rotate out each week, mirroring the churn the
/// weekly enumeration campaign produces.
fn synth_week(store: &mut dyn SnapshotSink, week: u32, per_week: u32) {
    let software = store.intern("dnsmasq-2.51");
    let country = store.intern("CN");
    for i in 0..per_week {
        let ip = 0x0a00_0000 + i * 11;
        if (ip as u64 + week as u64).is_multiple_of(7) {
            continue; // rotated out this week
        }
        let mut obs = Observation::at(ip, 0, 1_000_000 + week as u64 * 604_800_000);
        obs.software = software;
        obs.country = country;
        obs.banner_hash = (ip as u64) << 7 | week as u64;
        store.observe(obs);
    }
    store
        .commit(&format!("week-{week}"), week as u64 * 604_800_000, &[])
        .expect("commit");
}

fn populate(dir: &Path, weeks: u32, per_week: u32) -> CampaignStore {
    let mut store = CampaignStore::open(dir).expect("open store");
    for week in 0..weeks {
        synth_week(&mut store, week, per_week);
    }
    store
}

fn bench_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("scanstore_write");
    g.sample_size(10);
    for &per_week in &[2_000u32, PER_WEEK] {
        g.throughput(Throughput::Elements(per_week as u64 * WEEKS as u64));
        g.bench_with_input(
            BenchmarkId::new("commit_weeks", per_week),
            &per_week,
            |b, &per_week| {
                b.iter_with_setup(
                    || TempDir::new("write"),
                    |tmp| {
                        populate(&tmp.0, WEEKS, per_week);
                        tmp
                    },
                )
            },
        );
    }
    g.finish();
}

fn bench_read(c: &mut Criterion) {
    let tmp = TempDir::new("read");
    let store = populate(&tmp.0, WEEKS, PER_WEEK);
    let live: u64 = (0..WEEKS - 1)
        .map(|w| store.diff(w).unwrap().upserts.len() as u64)
        .sum();

    let mut g = c.benchmark_group("scanstore_read");
    g.sample_size(20);
    g.throughput(Throughput::Elements(live));
    g.bench_function("diff_cursor", |b| {
        b.iter(|| {
            let mut upserts = 0u64;
            for seq in 0..store.snapshot_count() - 1 {
                let d = store.diff(seq).expect("diff");
                upserts += d.upserts.len() as u64;
            }
            upserts
        })
    });
    g.bench_function("snapshot_scan", |b| {
        b.iter(|| {
            let mut records = 0u64;
            store
                .for_each_snapshot(&mut |snap| {
                    records += snap.records.len() as u64;
                    Ok(())
                })
                .expect("scan");
            records
        })
    });
    g.finish();
}

criterion_group!(benches, bench_write, bench_read);

fn rates(report: &mut BenchReport, what: &str, records: u64, seconds: f64) {
    report
        .derived
        .insert(format!("{what}_records"), records as f64);
    report.derived.insert(format!("{what}_seconds"), seconds);
    report
        .derived
        .insert(format!("{what}_records_per_sec"), records as f64 / seconds);
}

/// Single-shot re-measurement feeding `BENCH_scanstore.json`: runs with
/// a cleared global registry so the emitted report holds exactly this
/// workload's `scanstore.*` counters plus the throughput figures.
fn summary() -> BenchReport {
    telemetry::global().clear();
    let tmp = TempDir::new("summary");
    let start = Instant::now();
    let store = populate(&tmp.0, WEEKS, PER_WEEK);
    let write_secs = start.elapsed().as_secs_f64();
    let stats = store.stats();

    let start = Instant::now();
    let mut upserts = 0u64;
    for seq in 0..store.snapshot_count() - 1 {
        upserts += store.diff(seq).expect("diff").upserts.len() as u64;
    }
    let diff_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut records = 0u64;
    store
        .for_each_snapshot(&mut |snap| {
            records += snap.records.len() as u64;
            Ok(())
        })
        .expect("scan");
    let scan_secs = start.elapsed().as_secs_f64();

    let mut report = BenchReport::new(
        "scanstore",
        BenchConfig {
            weeks: WEEKS,
            ..BenchConfig::default()
        },
    );
    report.wall_clock_ms = ((write_secs + diff_secs + scan_secs) * 1000.0) as u64;
    report.peak_rss_kb = peak_rss_kb();
    for (k, v) in &telemetry::snapshot().counters {
        if k.starts_with("scanstore.") {
            report.counters.insert(k.clone(), *v);
        }
    }
    report
        .derived
        .insert("records_per_week".into(), PER_WEEK as f64);
    rates(&mut report, "write", stats.upserts_total, write_secs);
    rates(&mut report, "diff_cursor", upserts, diff_secs);
    rates(&mut report, "snapshot_scan", records, scan_secs);
    report.notes = format!(
        "single-shot re-measurement after the criterion groups; {} weeks x {} records",
        WEEKS, PER_WEEK
    );
    report
}

fn main() {
    benches();
    let report = summary();
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scanstore.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report") + "\n";
    std::fs::write(&out, json).expect("write BENCH_scanstore.json");
    println!("wrote {}", out.display());
}
