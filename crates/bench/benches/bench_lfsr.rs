//! A-ABL5 — LFSR permutation vs sequential scanning: throughput and the
//! politeness (per-/24 burst) metric the paper's scanner design targets.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use scanner::IpPermutation;
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn max_slash24_burst(order: impl Iterator<Item = Ipv4Addr>, window: usize) -> usize {
    let ips: Vec<Ipv4Addr> = order.collect();
    let mut worst = 0usize;
    for chunk in ips.windows(window) {
        let mut per24: HashMap<u32, usize> = HashMap::new();
        for ip in chunk {
            *per24.entry(u32::from(*ip) >> 8).or_insert(0) += 1;
        }
        worst = worst.max(*per24.values().max().unwrap());
    }
    worst
}

fn bench_lfsr(c: &mut Criterion) {
    let ranges = [(Ipv4Addr::new(11, 0, 0, 0), Ipv4Addr::new(11, 3, 255, 255))];
    let span = 4 * 65536u64;

    let mut g = c.benchmark_group("lfsr");
    g.throughput(Throughput::Elements(span));
    g.bench_function("permute_256k_addresses", |b| {
        b.iter(|| {
            let perm = IpPermutation::new(black_box(&ranges), 42);
            let mut acc = 0u64;
            for ip in perm {
                acc = acc.wrapping_add(u32::from(ip) as u64);
            }
            acc
        })
    });
    g.finish();

    // Politeness ablation printed once (criterion has no table output).
    let small = [(Ipv4Addr::new(11, 0, 0, 0), Ipv4Addr::new(11, 0, 15, 255))];
    let burst_perm = max_slash24_burst(IpPermutation::new(&small, 42), 64);
    let burst_seq = max_slash24_burst((0x0B000000u32..=0x0B000FFF).map(Ipv4Addr::from), 64);
    eprintln!("[A-ABL5] worst per-/24 burst in a 64-probe window: LFSR={burst_perm} sequential={burst_seq}");
}

criterion_group!(benches, bench_lfsr);
criterion_main!(benches);
