//! End-to-end Sections 3–4 pipeline on a focused domain set.

use criterion::{criterion_group, criterion_main, Criterion};
use goingwild::{run_analysis, AnalysisOptions, WorldConfig};
use worldgen::build_world;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("analysis_5_domains_tiny_world", |b| {
        b.iter_with_setup(
            || build_world(WorldConfig::tiny(9)),
            |mut world| {
                let opts = AnalysisOptions {
                    domains: Some(vec![
                        "facebook.example".into(),
                        "paypal.example".into(),
                        "youporn.example".into(),
                        "qzxkjv.example".into(),
                        "gt.gwild.example".into(),
                    ]),
                    ..Default::default()
                };
                run_analysis(&mut world, &opts)
            },
        )
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
