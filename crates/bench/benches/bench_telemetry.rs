//! Telemetry overhead baseline: the same netsim echo workload with the
//! global-registry instrumentation on (the default) and off, to verify
//! the "near-free when no exporter is attached" claim.
//!
//! The workload is pure event-loop churn — every datagram crosses the
//! instrumented send/schedule/dispatch/deliver path twice — so it is a
//! worst case for the per-packet counter cost. `main` writes the
//! comparison to `BENCH_telemetry.json` at the workspace root in the
//! normalized `goingwild.bench.v1` schema; the budget is < 3% overhead.

use bench::perf::{peak_rss_kb, BenchConfig, BenchReport};
use netsim::host::EchoHost;
use netsim::{Datagram, Network, NetworkConfig, SimTime};
use std::net::Ipv4Addr;
use std::path::Path;
use std::time::Instant;

const TARGETS: u32 = 64;
const PACKETS: u32 = 200_000;
const RUNS: usize = 5;

/// One full echo workload; returns (delivered datagrams, seconds).
fn echo_workload(instrumented: bool) -> (u64, f64) {
    let mut net = Network::new(NetworkConfig {
        seed: 42,
        udp_loss: 0.01,
        latency_ms: (5, 50),
        tcp_loss: 0.0,
    });
    net.set_instrumentation(instrumented);
    let h = net.add_host(Box::new(EchoHost));
    let targets: Vec<Ipv4Addr> = (0..TARGETS)
        .map(|i| Ipv4Addr::from(0x0909_0000u32 + i))
        .collect();
    for &ip in &targets {
        net.bind_ip(ip, h);
    }
    let src = Ipv4Addr::new(100, 0, 0, 1);
    let _sock = net.open_socket(src, 40_000);
    let start = Instant::now();
    for i in 0..PACKETS {
        let dst = targets[(i % TARGETS) as usize];
        net.send_udp(Datagram::new(
            src,
            40_000,
            dst,
            53,
            i.to_be_bytes().to_vec(),
        ));
    }
    let delivered = net.run_to_idle(SimTime::from_secs(3_600));
    (delivered, start.elapsed().as_secs_f64())
}

/// Best-of-N wall-clock for one mode (minimum filters scheduler noise).
fn best_of(instrumented: bool) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut delivered = 0;
    for _ in 0..RUNS {
        let (d, secs) = echo_workload(instrumented);
        delivered = d;
        best = best.min(secs);
    }
    (delivered, best)
}

fn main() {
    // Warm-up run so page faults and lazy init hit neither side.
    let _ = echo_workload(true);

    let (delivered_on, secs_on) = best_of(true);
    let (delivered_off, secs_off) = best_of(false);
    assert_eq!(
        delivered_on, delivered_off,
        "instrumentation must not change simulation behaviour"
    );
    let overhead_pct = 100.0 * (secs_on / secs_off - 1.0);

    let mut report = BenchReport::new(
        "telemetry_overhead",
        BenchConfig {
            seed: 42,
            ..BenchConfig::default()
        },
    );
    report.wall_clock_ms = (secs_on * 1000.0) as u64;
    report.peak_rss_kb = peak_rss_kb();
    report.derived.insert("packets".into(), PACKETS as f64);
    report
        .derived
        .insert("delivered".into(), delivered_on as f64);
    report.derived.insert("on_seconds".into(), secs_on);
    report.derived.insert("off_seconds".into(), secs_off);
    report.derived.insert("overhead_pct".into(), overhead_pct);
    report.derived.insert("overhead_budget_pct".into(), 3.0);
    report.notes = "netsim echo workload, instrumentation on vs off, best of 5".into();

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_telemetry.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report") + "\n";
    std::fs::write(&out, json).expect("write BENCH_telemetry.json");
    println!("wrote {}", out.display());
    println!("overhead: {overhead_pct:.2}% (on {secs_on:.3}s vs off {secs_off:.3}s, budget 3%)");
}
