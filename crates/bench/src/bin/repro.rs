//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro --exp all  --scale 0.001 --weeks 55 --seed 20151028
//! repro --exp fig1 --weeks 12
//! repro --exp fig1 --store runs/main   # collect once, re-serve from disk
//! repro --list
//! repro trace run.gwrs --probe 4.9.0.2 # replay one probe's timeline
//! repro bench --against BENCH_repro_all.json --threshold 25
//! ```
//!
//! Collect once, derive many: the selected experiments' campaign
//! requirements are unioned and collected in one pass over one world
//! ([`goingwild::collect_bundle`]), then every experiment derives its
//! artifact from the immutable bundle — in parallel. `repro --exp all`
//! therefore runs each campaign exactly once, and every single-
//! experiment invocation prints byte-identical output to its section
//! of the `all` run.
//!
//! `--list` enumerates every experiment id. With `--store <dir>` each
//! campaign persists its snapshots in a [`scanstore::CampaignStore`]
//! under `<dir>/<campaign>`: the first run collects (resuming from the
//! last committed segment if a previous run was killed), subsequent
//! runs serve the artifacts from disk without re-simulation.
//!
//! Observability:
//!
//! * `--metrics <path>` — write a one-shot telemetry snapshot (JSON)
//!   of every counter/gauge/histogram touched by the run, including
//!   the once-per-campaign proof counters `collect.world_builds` and
//!   `collect.campaign_runs{campaign=…}`;
//! * `--trace <path>` — stream JSON-lines span/event records (sim-time
//!   only, byte-stable for a fixed seed);
//! * `--record <path>` — arm the flight recorder and persist its
//!   probe-level records (attempt → backoff → fault drop → response /
//!   give-up) as a [`scanstore`] `GWRS` stream, replayable with
//!   `repro trace <path>`; `--record-rate <f>` samples targets
//!   deterministically (all-or-none per IP, default 1.0);
//! * `--profile <path>` — enable the sim-time profiler and write a
//!   flamegraph "folded" stack file (`path self_sim_ms` per line);
//!   `-v` also prints the per-span quantile table on stderr;
//! * `--quiet` / `-v` — status verbosity on stderr (reports on stdout
//!   are unaffected).
//!
//! Chaos-ready scanning:
//!
//! * `--faults <profile>` — install a named [`netsim::FaultPlan`]
//!   (`flaky`, `bursty`, `outage`, `flappy`, `ratelimited`, `hostile`)
//!   into the simulated network; implies 3 probe attempts for the
//!   retrying campaigns unless `--retries` says otherwise;
//! * `--retries <n>` — total probe attempts per retrying campaign
//!   (enumeration stays single-probe per the paper's Sec. 2.2);
//! * `--strict-coverage <pct>` — print the per-campaign coverage
//!   summary as usual, but exit with code 3 if any campaign's response
//!   coverage falls below the gate.
//!
//! Subcommands:
//!
//! * `repro trace <stream.gwrs> [--campaign c] [--probe a.b.c.d]
//!   [--asn n] [--fault reason] [--gave-up] [--limit n]` — query a
//!   recorded stream: reconstruct a probe's full timeline, list the
//!   probes a fault kind killed, or summarize the whole stream;
//! * `repro bench [--bench repro_all|recorder_overhead|serve_qps]
//!   [--out p.json] [--against baseline.json] [--threshold pct]
//!   <workload flags>` — run a perf benchmark and emit a
//!   `goingwild.bench.v1` report; with `--against`, exit 2 on workload
//!   mismatch and 4 on a wall-clock regression beyond the threshold.
//!   `serve_qps` collects into `--store`, starts the query daemon on a
//!   loopback port, and times the seeded client fleet;
//! * `repro serve --store <dir> [--addr host:port] [--cache-cap n]
//!   [--refresh-ms n] [--metrics p.json]` — serve the four query
//!   families (`/classify`, `/churn`, `/amplifiers`, `/coverage`) over
//!   HTTP/JSON straight from an on-disk store, refreshing when a
//!   writer commits new segments; SIGINT/SIGTERM drains in-flight
//!   requests and flushes a final metrics snapshot. With `--selftest
//!   [--seed n] [--clients n] [--requests n]` it instead starts the
//!   daemon in-process, replays the deterministic fleet, and prints a
//!   byte-stable one-line report.

use bench::perf::{self, BenchConfig, BenchReport, CompareError};
use goingwild::experiments::{self, known_experiment, DeriveOptions, Experiment, REGISTRY};
use goingwild::{collect_bundle, BundleOptions, CampaignKind, WorldConfig};
use netsim::FaultPlan;
use scanner::ProbePolicy;
use scanstore::StoredRecord;
use serve::run_fleet;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use telemetry::recorder::RecordKind;

struct Args {
    exp: String,
    scale: f64,
    weeks: u32,
    seed: u64,
    snoop_sample: usize,
    /// Named network fault profile injected into the simulation.
    faults: Option<String>,
    /// Probe attempts per retrying campaign (`None` = 1, or 3 when
    /// `--faults` is set).
    retries: Option<u32>,
    /// Exit non-zero when any campaign's coverage falls below this
    /// percentage.
    strict_coverage: Option<f64>,
    /// Also dump machine-readable reports to this JSON file.
    json: Option<String>,
    /// Persist campaign snapshots under this directory.
    store: Option<PathBuf>,
    /// Write a one-shot telemetry metrics snapshot to this JSON file.
    metrics: Option<String>,
    /// Stream JSON-lines trace records (spans + events) to this file.
    trace: Option<String>,
    /// Persist flight-recorder probe records to this GWRS stream.
    record: Option<String>,
    /// Deterministic per-IP sampling rate for the flight recorder.
    record_rate: f64,
    /// Write the sim-time profiler's folded stacks to this file.
    profile: Option<String>,
    /// Status verbosity on stderr: 0 = --quiet, 1 = default, 2 = -v.
    verbosity: u8,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("run `repro --list` for the experiment ids, or see --help in the crate docs");
    std::process::exit(2);
}

/// Parses a numeric flag value, exiting with a one-line usage error
/// instead of panicking on garbage like `--weeks banana`.
fn parse_num<T: std::str::FromStr>(flag: &str, value: String) -> T {
    value
        .parse()
        .unwrap_or_else(|_| usage_error(&format!("{flag} expects a number, got `{value}`")))
}

fn print_experiment_list() {
    use std::fmt::Write as _;
    let mut out = String::from("experiment ids accepted by --exp (plus `all`):\n");
    for e in REGISTRY {
        let _ = writeln!(out, "  {:<10} {}", e.id, e.title);
    }
    // One write, errors ignored: `repro --list | head` must not panic.
    let _ = std::io::Write::write_all(&mut std::io::stdout(), out.as_bytes());
}

fn parse_args(argv: Vec<String>) -> Args {
    let mut args = Args {
        exp: "all".to_string(),
        scale: 0.0005,
        weeks: 55,
        seed: 2015_1028,
        snoop_sample: 1_500,
        faults: None,
        retries: None,
        strict_coverage: None,
        json: None,
        store: None,
        metrics: None,
        trace: None,
        record: None,
        record_rate: 1.0,
        profile: None,
        verbosity: 1,
    };
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        let mut grab = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{a} requires a value")))
        };
        match a.as_str() {
            "--exp" => args.exp = grab(),
            "--scale" => args.scale = parse_num("--scale", grab()),
            "--weeks" => args.weeks = parse_num("--weeks", grab()),
            "--seed" => args.seed = parse_num("--seed", grab()),
            "--snoop-sample" => args.snoop_sample = parse_num("--snoop-sample", grab()),
            "--faults" => args.faults = Some(grab()),
            "--retries" => args.retries = Some(parse_num("--retries", grab())),
            "--strict-coverage" => {
                args.strict_coverage = Some(parse_num("--strict-coverage", grab()))
            }
            "--json" => args.json = Some(grab()),
            "--store" => args.store = Some(PathBuf::from(grab())),
            "--metrics" => args.metrics = Some(grab()),
            "--trace" => args.trace = Some(grab()),
            "--record" => args.record = Some(grab()),
            "--record-rate" => args.record_rate = parse_num("--record-rate", grab()),
            "--profile" => args.profile = Some(grab()),
            "--quiet" | "-q" => args.verbosity = 0,
            "-v" | "--verbose" => args.verbosity = 2,
            "--list" => {
                print_experiment_list();
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other}")),
        }
    }
    if !known_experiment(&args.exp) {
        usage_error(&format!("unknown experiment id `{}`", args.exp));
    }
    if let Some(profile) = &args.faults {
        if FaultPlan::named(profile, 0).is_none() {
            usage_error(&format!(
                "unknown fault profile `{profile}`; known profiles: {}",
                FaultPlan::PROFILES.join(", ")
            ));
        }
    }
    if args.retries == Some(0) {
        usage_error("--retries must be at least 1 (total probe attempts)");
    }
    if let Some(pct) = args.strict_coverage {
        if !(0.0..=100.0).contains(&pct) {
            usage_error("--strict-coverage expects a percentage in 0..=100");
        }
    }
    if !(0.0..=1.0).contains(&args.record_rate) {
        usage_error("--record-rate expects a fraction in 0..=1");
    }
    // Fail fast on unwritable outputs, before hours of simulation.
    for (flag, path) in [
        ("--json", &args.json),
        ("--metrics", &args.metrics),
        ("--trace", &args.trace),
        ("--record", &args.record),
        ("--profile", &args.profile),
    ] {
        if let Some(path) = path {
            if let Err(e) = probe_writable_file(path) {
                usage_error(&format!("{flag} path {path} is not writable: {e}"));
            }
        }
    }
    if let Some(dir) = &args.store {
        if let Err(e) = probe_writable_dir(dir) {
            usage_error(&format!(
                "--store dir {} is not writable: {e}",
                dir.display()
            ));
        }
    }
    args
}

/// Verifies the JSON report path can be created without clobbering
/// anything on failure (existing files are left untouched).
fn probe_writable_file(path: &str) -> std::io::Result<()> {
    use std::fs::OpenOptions;
    let existed = std::path::Path::new(path).exists();
    OpenOptions::new().append(true).create(true).open(path)?;
    if !existed {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

/// Verifies the store directory exists (creating it if needed) and
/// accepts writes.
fn probe_writable_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let probe = dir.join(".repro-write-probe.tmp");
    std::fs::write(&probe, b"probe")?;
    std::fs::remove_file(&probe)
}

fn cfg_of(args: &Args) -> WorldConfig {
    WorldConfig {
        seed: args.seed,
        scale: args.scale,
        udp_loss: 0.004,
        weeks: args.weeks,
    }
}

/// The experiments `--exp` selects. For `all`, subsumed experiments'
/// sections already appear byte-for-byte inside their subsumer's
/// report, so they are skipped and each section prints exactly once.
fn select_experiments(exp: &str) -> Vec<&'static Experiment> {
    if exp == "all" {
        REGISTRY
            .iter()
            .filter(|e| e.subsumed_by.is_none())
            .collect()
    } else {
        vec![experiments::experiment(exp).expect("validated by known_experiment")]
    }
}

/// Union of the selected experiments' campaign requirements.
fn union_kinds(selected: &[&'static Experiment]) -> Vec<CampaignKind> {
    selected
        .iter()
        .flat_map(|e| e.requires.iter().copied())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("trace") => trace_main(argv[1..].to_vec()),
        Some("bench") => bench_main(argv[1..].to_vec()),
        Some("serve") => serve_main(argv[1..].to_vec()),
        _ => run_main(argv),
    }
}

// ---------------------------------------------------------------------
// `repro serve` — long-running query service over a campaign store.
// ---------------------------------------------------------------------

struct ServeArgs {
    opts: serve::ServeOptions,
    selftest: bool,
    seed: u64,
    clients: usize,
    requests: usize,
}

fn parse_serve_args(argv: Vec<String>) -> ServeArgs {
    let mut sa = ServeArgs {
        opts: serve::ServeOptions {
            announce: true,
            ..serve::ServeOptions::default()
        },
        selftest: false,
        seed: 2015_1028,
        clients: 4,
        requests: 100,
    };
    let mut store = None;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        let mut grab = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{a} requires a value")))
        };
        match a.as_str() {
            "--store" => store = Some(PathBuf::from(grab())),
            "--addr" => sa.opts.addr = grab(),
            "--cache-cap" => sa.opts.cache_cap = parse_num("--cache-cap", grab()),
            "--refresh-ms" => sa.opts.refresh_ms = parse_num("--refresh-ms", grab()),
            "--metrics" => sa.opts.metrics = Some(PathBuf::from(grab())),
            "--selftest" => sa.selftest = true,
            "--seed" => sa.seed = parse_num("--seed", grab()),
            "--clients" => sa.clients = parse_num("--clients", grab()),
            "--requests" => sa.requests = parse_num("--requests", grab()),
            other => usage_error(&format!("unknown serve argument {other}")),
        }
    }
    let Some(store) = store else {
        usage_error(
            "serve requires --store <dir> (a campaign store from `repro --exp … --store <dir>`)",
        );
    };
    sa.opts.store = store;
    if sa.selftest && (sa.clients == 0 || sa.requests == 0) {
        usage_error("--selftest needs at least 1 client and 1 request");
    }
    sa
}

fn serve_main(argv: Vec<String>) {
    let sa = parse_serve_args(argv);
    if sa.selftest {
        // Start the daemon in-process, replay the seeded fleet against
        // it, and report deterministically: stdout carries exactly one
        // JSON line which two same-seed runs must reproduce
        // byte-for-byte; timing-dependent numbers go to stderr.
        let opts = serve::ServeOptions {
            announce: false,
            ..sa.opts.clone()
        };
        let server = serve::RunningServer::start(&opts).unwrap_or_else(|e| {
            eprintln!("repro serve: cannot start daemon: {e}");
            std::process::exit(1);
        });
        let fleet = serve::FleetOptions {
            addr: server.addr(),
            store: sa.opts.store.clone(),
            seed: sa.seed,
            clients: sa.clients,
            requests: sa.requests,
        };
        let report = run_fleet(&fleet).unwrap_or_else(|e| {
            eprintln!("repro serve: fleet failed: {e}");
            std::process::exit(1);
        });
        let summary = server.stop().unwrap_or_else(|e| {
            eprintln!("repro serve: daemon shutdown failed: {e}");
            std::process::exit(1);
        });
        println!("{}", report.deterministic_json());
        eprintln!(
            "repro serve: selftest {} requests in {} ms ({} qps), {} served, {} refreshes",
            report.requests,
            report.wall_ms,
            (report.requests * 1000)
                .checked_div(report.wall_ms)
                .unwrap_or(0),
            summary.requests,
            summary.refreshes,
        );
        if report.errors > 0 {
            eprintln!("repro serve: selftest saw {} errors", report.errors);
            std::process::exit(1);
        }
        return;
    }
    serve::signal::install();
    match serve::server::run(&sa.opts) {
        Ok(summary) => eprintln!(
            "repro serve: drained, {} requests served, {} engine refreshes",
            summary.requests, summary.refreshes
        ),
        Err(e) => {
            eprintln!("repro serve: {e}");
            std::process::exit(1);
        }
    }
}

fn run_main(argv: Vec<String>) {
    let args = parse_args(argv);
    telemetry::set_verbosity(match args.verbosity {
        0 => telemetry::Level::Error,
        1 => telemetry::Level::Info,
        _ => telemetry::Level::Debug,
    });
    if let Some(path) = &args.trace {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| usage_error(&format!("--trace path {path}: {e}")));
        telemetry::attach_trace(Box::new(std::io::BufWriter::new(file)));
    }
    if args.record.is_some() {
        telemetry::recorder::enable(
            args.record_rate,
            args.seed,
            telemetry::recorder::DEFAULT_CAPACITY,
        );
    }
    if args.profile.is_some() {
        telemetry::enable_profile();
    }
    let cfg = cfg_of(&args);
    let mut json_out = serde_json::Map::new();
    println!(
        "# Going Wild reproduction — scale {} (≈{} resolvers), seed {}\n",
        cfg.scale,
        (26_800_000.0 * cfg.scale) as u64,
        cfg.seed
    );

    // Select experiments, union their campaign requirements, collect
    // the bundle once, then derive every artifact from it in parallel.
    let selected = select_experiments(&args.exp);
    let kinds = union_kinds(&selected);
    let fault_plan = args
        .faults
        .as_deref()
        .map(|p| FaultPlan::named(p, args.seed).expect("validated by parse_args"));
    // A fault profile without an explicit --retries implies the
    // chaos-ready default of 3 attempts; otherwise campaigns stay
    // single-probe (byte-identical to the pre-fault pipeline).
    let attempts = args
        .retries
        .unwrap_or(if fault_plan.is_some() { 3 } else { 1 });
    let bundle_opts = BundleOptions {
        seed: args.seed,
        weeks: args.weeks,
        snoop_sample: args.snoop_sample,
        faults: fault_plan,
        probe: ProbePolicy::retrying(attempts),
        ..BundleOptions::new(cfg.clone())
    };
    let bundle =
        collect_bundle(&bundle_opts, &kinds, args.store.as_deref()).unwrap_or_else(|e| match &args
            .store
        {
            Some(dir) => die_store(dir, &e),
            None => {
                eprintln!("repro: bundle collection failed: {e}");
                std::process::exit(1);
            }
        });
    let derive_opts = DeriveOptions {
        cfg: cfg.clone(),
        ..DeriveOptions::default()
    };
    let outputs = experiments::derive_all(&bundle, &selected, &derive_opts);
    let mut failed = false;
    for (exp, out) in selected.iter().zip(outputs) {
        match out {
            Ok(out) => {
                println!("{}", out.text);
                if args.json.is_some() {
                    if let Some((key, value)) = out.json {
                        // Experiments sharing a data product emit the
                        // same key; first writer wins.
                        if json_out.get(key).is_none() {
                            json_out.insert(key.to_string(), value);
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("repro: experiment {} failed: {e}", exp.id);
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }

    let coverage = bundle.coverage();
    if !coverage.is_empty() {
        println!("# Campaign coverage (this collection)");
        for (kind, cov) in coverage {
            println!(
                "  {:<8} {:>6.2}%  attempted {}, answered {}, gave up {}, unreachable {}, retries {}{}",
                kind.name(),
                100.0 * cov.fraction(),
                cov.attempted,
                cov.answered,
                cov.gave_up,
                cov.unreachable,
                cov.retries,
                if cov.space { " (address space)" } else { "" },
            );
        }
        println!();
        if args.json.is_some() {
            let cov_json: std::collections::BTreeMap<&'static str, &scanner::Coverage> =
                coverage.iter().map(|(k, c)| (k.name(), c)).collect();
            json_out.insert("coverage".into(), serde_json::to_value(&cov_json).unwrap());
        }
    }

    let store_stats = bundle.store_stats();
    if !store_stats.is_empty() {
        println!(
            "# Snapshot store — {}",
            args.store.as_ref().expect("store set").display()
        );
        for (campaign, s) in &store_stats {
            println!(
                "  {campaign:<8} {} segments, {} live records, {} bytes on disk ({:.1}x vs JSON lines), {} recovery events{}",
                s.segments,
                s.live_records,
                s.bytes_written,
                s.compression_ratio,
                s.recovery_events,
                match s.resumed_at {
                    Some(seq) => format!(", resumed at segment {seq}"),
                    None => String::new(),
                }
            );
        }
        println!();
        if args.json.is_some() {
            let stores: std::collections::BTreeMap<String, &scanstore::StoreStats> = store_stats
                .iter()
                .map(|(campaign, s)| ((*campaign).to_string(), s))
                .collect();
            json_out.insert("store".into(), serde_json::to_value(&stores).unwrap());
        }
    }

    if let Some(path) = &args.json {
        std::fs::write(path, serde_json::to_string_pretty(&json_out).unwrap())
            .expect("write json report");
        telemetry::info(
            "repro.json",
            "wrote machine-readable reports",
            &[("path", path.as_str().into())],
            None,
        );
    }

    // Flush the trace stream before the metrics snapshot so the two
    // artifacts are consistent with each other.
    let _ = telemetry::detach_trace();

    // Persist the flight-recorder stream before the metrics snapshot,
    // so its scanstore.recorder.* counters are part of the snapshot.
    if let Some(path) = &args.record {
        let stats = telemetry::recorder::stats();
        let records = telemetry::recorder::drain();
        telemetry::recorder::disable();
        let mut stream = scanstore::RecorderStream::create(Path::new(path))
            .unwrap_or_else(|e| usage_error(&format!("--record path {path}: {e}")));
        stream.append(&records).expect("write recorder stream");
        let (segments, n) = stream.finish().expect("sync recorder stream");
        telemetry::info(
            "repro.record",
            "wrote flight-recorder stream",
            &[
                ("path", path.as_str().into()),
                ("segments", segments.into()),
                ("records", n.into()),
                ("overwritten", stats.overwritten.into()),
            ],
            None,
        );
    }

    if let Some(path) = &args.profile {
        if let Some(profile) = telemetry::take_profile() {
            std::fs::write(path, profile.folded_text()).expect("write folded profile");
            if args.verbosity >= 2 {
                eprint!("{}", profile.summary_table());
            }
            telemetry::info(
                "repro.profile",
                "wrote folded sim-time stacks",
                &[
                    ("path", path.as_str().into()),
                    ("spans", (profile.spans().len() as u64).into()),
                ],
                None,
            );
        }
    }

    if let Some(path) = &args.metrics {
        let snap = telemetry::snapshot();
        std::fs::write(path, snap.to_json()).expect("write metrics snapshot");
        if args.verbosity >= 2 {
            eprint!("{}", snap.to_table());
        }
        telemetry::info(
            "repro.metrics",
            "wrote telemetry snapshot",
            &[("path", path.as_str().into())],
            None,
        );
    }

    // The strict gate runs last so every artifact (reports, JSON,
    // metrics, traces) is written even for a degraded run.
    if let Some(pct) = args.strict_coverage {
        let threshold = pct / 100.0;
        let degraded = bundle.degraded(threshold);
        if !degraded.is_empty() {
            for kind in &degraded {
                let cov = &bundle.coverage()[kind];
                eprintln!(
                    "repro: campaign `{}` coverage {:.2}% is below the --strict-coverage gate of {pct}%",
                    kind.name(),
                    100.0 * cov.fraction(),
                );
            }
            std::process::exit(3);
        }
        eprintln!(
            "repro: strict coverage gate passed ({} campaigns >= {pct}%)",
            bundle.coverage().len()
        );
    }
}

/// A store failure is an environment problem, not a bug — report and
/// exit non-zero instead of panicking.
fn die_store(dir: &std::path::Path, err: &std::io::Error) -> ! {
    eprintln!("repro: snapshot store at {} failed: {err}", dir.display());
    std::process::exit(1);
}

// ---------------------------------------------------------------------
// `repro bench` — perf benchmarks in the goingwild.bench.v1 schema.
// ---------------------------------------------------------------------

struct BenchArgs {
    bench: String,
    out: Option<String>,
    against: Option<String>,
    threshold_pct: f64,
    workload: Args,
}

fn parse_bench_args(argv: Vec<String>) -> BenchArgs {
    let mut bench = "repro_all".to_string();
    let mut out = None;
    let mut against = None;
    let mut threshold_pct = 10.0;
    let mut rest = Vec::new();
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        let mut grab = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{a} requires a value")))
        };
        match a.as_str() {
            "--bench" => bench = grab(),
            "--out" => out = Some(grab()),
            "--against" => against = Some(grab()),
            "--threshold" => threshold_pct = parse_num("--threshold", grab()),
            _ => rest.push(a),
        }
    }
    if !matches!(
        bench.as_str(),
        "repro_all" | "recorder_overhead" | "serve_qps"
    ) {
        usage_error(&format!(
            "unknown bench `{bench}`; known benches: repro_all, recorder_overhead, serve_qps"
        ));
    }
    if threshold_pct < 0.0 {
        usage_error("--threshold expects a non-negative percentage");
    }
    let workload = parse_args(rest);
    BenchArgs {
        bench,
        out,
        against,
        threshold_pct,
        workload,
    }
}

/// One quiet collect+derive pass over the workload; returns the
/// measured wall-clock in milliseconds.
fn run_workload(args: &Args) -> u64 {
    let cfg = cfg_of(args);
    let selected = select_experiments(&args.exp);
    let kinds = union_kinds(&selected);
    let fault_plan = args
        .faults
        .as_deref()
        .map(|p| FaultPlan::named(p, args.seed).expect("validated by parse_args"));
    let attempts = args
        .retries
        .unwrap_or(if fault_plan.is_some() { 3 } else { 1 });
    let bundle_opts = BundleOptions {
        seed: args.seed,
        weeks: args.weeks,
        snoop_sample: args.snoop_sample,
        faults: fault_plan,
        probe: ProbePolicy::retrying(attempts),
        ..BundleOptions::new(cfg.clone())
    };
    let derive_opts = DeriveOptions {
        cfg,
        ..DeriveOptions::default()
    };
    let t0 = std::time::Instant::now();
    let bundle = collect_bundle(&bundle_opts, &kinds, None).unwrap_or_else(|e| {
        eprintln!("repro bench: bundle collection failed: {e}");
        std::process::exit(1);
    });
    for (exp, out) in selected
        .iter()
        .zip(experiments::derive_all(&bundle, &selected, &derive_opts))
    {
        if let Err(e) = out {
            eprintln!("repro bench: experiment {} failed: {e}", exp.id);
            std::process::exit(1);
        }
    }
    t0.elapsed().as_millis() as u64
}

/// Counter prefixes worth carrying in a bench report: enough to see
/// *what* the benchmark did, without dumping the whole registry.
const BENCH_COUNTER_PREFIXES: &[&str] = &[
    "collect.",
    "derive.experiment_runs",
    "scanner.probes_sent",
    "scanner.responses",
    "scanner.retries",
    "netsim.udp",
    "serve.",
    "scanstore.view.",
];

fn bench_report(ba: &BenchArgs, wall_clock_ms: u64) -> BenchReport {
    let args = &ba.workload;
    let attempts = args
        .retries
        .unwrap_or(if args.faults.is_some() { 3 } else { 1 });
    let mut report = BenchReport::new(
        &ba.bench,
        BenchConfig {
            exp: args.exp.clone(),
            scale: args.scale,
            weeks: args.weeks,
            seed: args.seed,
            snoop_sample: args.snoop_sample,
            faults: args.faults.clone(),
            retries: attempts,
        },
    );
    report.wall_clock_ms = wall_clock_ms;
    report.peak_rss_kb = perf::peak_rss_kb();
    let snap = telemetry::snapshot();
    report.sim_time_ms = snap.gauge("collect.sim_end_ms").unwrap_or(0.0) as u64;
    for (k, v) in &snap.counters {
        if BENCH_COUNTER_PREFIXES.iter().any(|p| k.starts_with(p)) {
            report.counters.insert(k.clone(), *v);
        }
    }
    report
}

fn bench_main(argv: Vec<String>) {
    let ba = parse_bench_args(argv);
    // Benchmarks run quietly: status chatter on stderr would only blur
    // the timings, and reports go to --out / stdout.
    telemetry::set_verbosity(telemetry::Level::Error);
    let mut report = match ba.bench.as_str() {
        "repro_all" => {
            let wall = run_workload(&ba.workload);
            bench_report(&ba, wall)
        }
        "recorder_overhead" => {
            // Warm caches and allocators, then time the identical
            // workload with the flight recorder off and on. Reps are
            // interleaved (off, on, off, on, …) and each mode takes
            // its minimum, so monotonic machine drift cancels instead
            // of landing on one mode; the derived overhead percentage
            // is the acceptance number.
            run_workload(&ba.workload);
            let mut off_ms = u64::MAX;
            let mut on_ms = u64::MAX;
            let mut recorded = 0;
            for _ in 0..3 {
                off_ms = off_ms.min(run_workload(&ba.workload));
                telemetry::recorder::enable(
                    1.0,
                    ba.workload.seed,
                    telemetry::recorder::DEFAULT_CAPACITY,
                );
                on_ms = on_ms.min(run_workload(&ba.workload));
                recorded = telemetry::recorder::stats().recorded;
                telemetry::recorder::disable();
            }
            let mut r = bench_report(&ba, on_ms);
            r.derived.insert("off_ms".into(), off_ms as f64);
            r.derived.insert("on_ms".into(), on_ms as f64);
            r.derived.insert("records".into(), recorded as f64);
            r.derived.insert(
                "overhead_pct".into(),
                if off_ms > 0 {
                    100.0 * (on_ms as f64 - off_ms as f64) / off_ms as f64
                } else {
                    0.0
                },
            );
            r.notes = "wall_clock_ms is the recorder-on run; overhead_pct = (on-off)/off".into();
            r
        }
        "serve_qps" => {
            // Collect the workload's campaigns into the --store dir
            // (resumed for free when already collected), start the
            // daemon on a loopback port, and time the seeded fleet.
            let Some(store) = ba.workload.store.clone() else {
                usage_error("--bench serve_qps requires --store <dir> for the campaign store");
            };
            let cfg = cfg_of(&ba.workload);
            let selected = select_experiments(&ba.workload.exp);
            let kinds = union_kinds(&selected);
            let bundle_opts = BundleOptions {
                seed: ba.workload.seed,
                weeks: ba.workload.weeks,
                snoop_sample: ba.workload.snoop_sample,
                ..BundleOptions::new(cfg)
            };
            if let Err(e) = collect_bundle(&bundle_opts, &kinds, Some(&store)) {
                eprintln!("repro bench: store collection failed: {e}");
                std::process::exit(1);
            }
            let opts = serve::ServeOptions {
                store: store.clone(),
                refresh_ms: 0, // static store: measure pure query service
                ..serve::ServeOptions::default()
            };
            let server = serve::RunningServer::start(&opts).unwrap_or_else(|e| {
                eprintln!("repro bench: cannot start daemon: {e}");
                std::process::exit(1);
            });
            let fleet = serve::FleetOptions {
                addr: server.addr(),
                store,
                seed: ba.workload.seed,
                clients: 4,
                requests: 150,
            };
            // Warm-up pass (connects, caches, allocator), then the
            // timed pass.
            if let Err(e) = run_fleet(&fleet) {
                eprintln!("repro bench: fleet failed: {e}");
                std::process::exit(1);
            }
            let rep = run_fleet(&fleet).unwrap_or_else(|e| {
                eprintln!("repro bench: fleet failed: {e}");
                std::process::exit(1);
            });
            if rep.errors > 0 {
                eprintln!("repro bench: fleet saw {} errors", rep.errors);
                std::process::exit(1);
            }
            let _ = server.stop();
            let mut r = bench_report(&ba, rep.wall_ms.max(1));
            r.derived.insert("requests".into(), rep.requests as f64);
            r.derived.insert(
                "qps".into(),
                rep.requests as f64 * 1000.0 / rep.wall_ms.max(1) as f64,
            );
            r.derived.insert("bytes".into(), rep.bytes as f64);
            let snap = telemetry::snapshot();
            let hits = snap.counter("serve.cache.hit").unwrap_or(0);
            let misses = snap.counter("serve.cache.miss").unwrap_or(0);
            r.derived.insert(
                "cache_hit_rate".into(),
                hits as f64 / (hits + misses).max(1) as f64,
            );
            r.notes =
                "wall_clock_ms is the timed fleet pass (4 clients x 150 requests, warm cache)"
                    .into();
            r
        }
        _ => unreachable!("validated by parse_bench_args"),
    };
    report.notes = if report.notes.is_empty() {
        "recorded by `repro bench`".into()
    } else {
        report.notes
    };

    let json = serde_json::to_string_pretty(&report).unwrap() + "\n";
    match &ba.out {
        Some(path) => {
            std::fs::write(path, &json).expect("write bench report");
            eprintln!("repro bench: wrote {path}");
        }
        None => print!("{json}"),
    }

    if let Some(path) = &ba.against {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("repro bench: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline: BenchReport = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("repro bench: baseline {path} is not a bench report: {e}");
            std::process::exit(2);
        });
        match perf::compare(&report, &baseline, ba.threshold_pct) {
            Ok(verdict) => eprintln!("repro bench: {verdict}"),
            Err(e @ (CompareError::BadSchema(_) | CompareError::ConfigMismatch(_))) => {
                eprintln!("repro bench: {e}");
                std::process::exit(2);
            }
            Err(e @ CompareError::Regression(_)) => {
                eprintln!("repro bench: {e}");
                std::process::exit(4);
            }
        }
    }
}

// ---------------------------------------------------------------------
// `repro trace` — query a recorded GWRS stream.
// ---------------------------------------------------------------------

struct TraceArgs {
    stream: PathBuf,
    campaign: Option<String>,
    probe: Option<Ipv4Addr>,
    asn: Option<u32>,
    fault: Option<String>,
    gave_up: bool,
    limit: usize,
}

fn parse_trace_args(argv: Vec<String>) -> TraceArgs {
    let mut stream = None;
    let mut campaign = None;
    let mut probe = None;
    let mut asn = None;
    let mut fault = None;
    let mut gave_up = false;
    let mut limit = 50usize;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        let mut grab = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{a} requires a value")))
        };
        match a.as_str() {
            "--campaign" => campaign = Some(grab()),
            "--probe" => {
                probe = Some(grab().parse::<Ipv4Addr>().unwrap_or_else(|_| {
                    usage_error("--probe expects a dotted IPv4 address");
                }))
            }
            "--asn" => asn = Some(parse_num("--asn", grab())),
            "--fault" => fault = Some(grab()),
            "--gave-up" => gave_up = true,
            "--limit" => limit = parse_num("--limit", grab()),
            other if !other.starts_with('-') && stream.is_none() => {
                stream = Some(PathBuf::from(other))
            }
            other => usage_error(&format!("unknown trace argument {other}")),
        }
    }
    let Some(stream) = stream else {
        usage_error("trace requires a recorded stream path (from `repro --record <path>`)");
    };
    TraceArgs {
        stream,
        campaign,
        probe,
        asn,
        fault,
        gave_up,
        limit,
    }
}

fn fmt_ms(t_ms: u64) -> String {
    format!("t+{}.{:03}s", t_ms / 1000, t_ms % 1000)
}

/// One human-readable timeline line per record.
fn fmt_record(r: &StoredRecord) -> String {
    let ip = Ipv4Addr::from(r.ip);
    match r.kind {
        RecordKind::Attempt => format!(
            "{} {:<6} attempt #{} sent to {ip}{}",
            fmt_ms(r.t_ms),
            r.campaign,
            r.attempt,
            if r.asn != 0 {
                format!(" (AS{})", r.asn)
            } else {
                String::new()
            }
        ),
        RecordKind::Backoff => format!(
            "{} {:<6} backoff: wait {} ms before attempt #{} (campaign-wide)",
            fmt_ms(r.t_ms),
            r.campaign,
            r.value,
            r.attempt
        ),
        RecordKind::Drop => format!(
            "{} {:<6} attempt #{}: datagram for {ip} dropped by `{}`",
            fmt_ms(r.t_ms),
            r.campaign,
            r.attempt,
            r.reason
        ),
        RecordKind::Response => format!(
            "{} {:<6} response from {ip}, rcode {}",
            fmt_ms(r.t_ms),
            r.campaign,
            r.value
        ),
        RecordKind::GaveUp => format!(
            "{} {:<6} gave up on {ip} after {} attempts{}",
            fmt_ms(r.t_ms),
            r.campaign,
            r.value,
            if r.asn != 0 {
                format!(" (AS{})", r.asn)
            } else {
                String::new()
            }
        ),
    }
}

fn trace_main(argv: Vec<String>) {
    let ta = parse_trace_args(argv);
    let mut records = scanstore::read_stream(&ta.stream).unwrap_or_else(|e| {
        eprintln!("repro trace: cannot read {}: {e}", ta.stream.display());
        std::process::exit(1);
    });
    // `read_stream` recovers by keeping the longest valid prefix — but
    // a non-empty file yielding *zero* records is not a recovery, it's
    // the wrong (or fully truncated) file. An empty stream file is
    // legitimate: a recorder armed on a run that probed nothing.
    if records.is_empty() {
        let len = std::fs::metadata(&ta.stream).map(|m| m.len()).unwrap_or(0);
        if len > 0 {
            eprintln!(
                "repro trace: {} ({len} bytes) contains no decodable GWRS segments — truncated or not a recorder stream",
                ta.stream.display()
            );
            std::process::exit(1);
        }
    }
    if let Some(c) = &ta.campaign {
        records.retain(|r| &r.campaign == c);
    }
    // Buffered output, flushed in one write that ignores errors: a
    // downstream `head` closing the pipe is not a failure.
    let mut out = String::new();
    render_trace(&ta, &records, &mut out);
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(out.as_bytes());
}

fn render_trace(ta: &TraceArgs, records: &[StoredRecord], out: &mut String) {
    use std::fmt::Write as _;
    if records.is_empty() {
        let _ = writeln!(out, "no records match (stream {})", ta.stream.display());
        return;
    }

    if let Some(ip) = ta.probe {
        // Full timeline for one probe: its own records plus the
        // campaign-wide backoff decisions of the campaigns it was
        // probed by, replayed in sequence order.
        let ip_u32 = u32::from(ip);
        let campaigns: BTreeSet<&str> = records
            .iter()
            .filter(|r| r.ip == ip_u32)
            .map(|r| r.campaign.as_str())
            .collect();
        let timeline: Vec<&StoredRecord> = records
            .iter()
            .filter(|r| r.ip == ip_u32 || (r.ip == 0 && campaigns.contains(r.campaign.as_str())))
            .collect();
        let _ = writeln!(out, "# timeline for {ip} — {} records", timeline.len());
        for r in timeline {
            let _ = writeln!(out, "  [{:>6}] {}", r.seq, fmt_record(r));
        }
        return;
    }

    if let Some(asn) = ta.asn {
        let ips: BTreeSet<u32> = records
            .iter()
            .filter(|r| r.asn == asn && r.ip != 0)
            .map(|r| r.ip)
            .collect();
        let matching: Vec<&StoredRecord> = records.iter().filter(|r| ips.contains(&r.ip)).collect();
        let _ = writeln!(
            out,
            "# AS{asn} — {} probes, {} records",
            ips.len(),
            matching.len()
        );
        print_limited(&matching, ta.limit, out);
        return;
    }

    if let Some(reason) = &ta.fault {
        let matching: Vec<&StoredRecord> = records
            .iter()
            .filter(|r| r.kind == RecordKind::Drop && &r.reason == reason)
            .collect();
        let _ = writeln!(
            out,
            "# drops caused by `{reason}` — {} records",
            matching.len()
        );
        print_limited(&matching, ta.limit, out);
        return;
    }

    if ta.gave_up {
        let matching: Vec<&StoredRecord> = records
            .iter()
            .filter(|r| r.kind == RecordKind::GaveUp)
            .collect();
        let _ = writeln!(
            out,
            "# probes that exhausted every attempt — {}",
            matching.len()
        );
        print_limited(&matching, ta.limit, out);
        return;
    }

    // No filter: summarize the stream.
    let mut by_campaign: std::collections::BTreeMap<&str, [u64; 5]> =
        std::collections::BTreeMap::new();
    let mut drop_reasons: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    let mut probes: BTreeSet<u32> = BTreeSet::new();
    for r in records {
        by_campaign.entry(r.campaign.as_str()).or_default()[r.kind.to_u8() as usize] += 1;
        if r.kind == RecordKind::Drop {
            *drop_reasons.entry(r.reason.as_str()).or_default() += 1;
        }
        if r.ip != 0 {
            probes.insert(r.ip);
        }
    }
    let _ = writeln!(
        out,
        "# {} — {} records, {} distinct probes",
        ta.stream.display(),
        records.len(),
        probes.len()
    );
    let _ = writeln!(
        out,
        "  {:<8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "campaign", "attempts", "backoffs", "drops", "responses", "gave_up"
    );
    for (campaign, counts) in &by_campaign {
        let _ = writeln!(
            out,
            "  {campaign:<8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            counts[0], counts[1], counts[2], counts[3], counts[4]
        );
    }
    if !drop_reasons.is_empty() {
        let _ = writeln!(out, "  drop reasons:");
        for (reason, n) in &drop_reasons {
            let _ = writeln!(out, "    {reason:<12} {n}");
        }
    }
    let _ = writeln!(
        out,
        "  filter with --probe/--asn/--fault/--gave-up/--campaign for timelines"
    );
}

fn print_limited(records: &[&StoredRecord], limit: usize, out: &mut String) {
    use std::fmt::Write as _;
    let shown = if limit == 0 {
        records.len()
    } else {
        records.len().min(limit)
    };
    for r in &records[..shown] {
        let _ = writeln!(out, "  [{:>6}] {}", r.seq, fmt_record(r));
    }
    if shown < records.len() {
        let _ = writeln!(
            out,
            "  … {} more (raise --limit, or 0 for all)",
            records.len() - shown
        );
    }
}
