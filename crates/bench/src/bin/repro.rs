//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro --exp all  --scale 0.001 --weeks 55 --seed 20151028
//! repro --exp fig1 --weeks 12
//! repro --exp fig1 --store runs/main   # collect once, re-serve from disk
//! repro --list
//! ```
//!
//! Collect once, derive many: the selected experiments' campaign
//! requirements are unioned and collected in one pass over one world
//! ([`goingwild::collect_bundle`]), then every experiment derives its
//! artifact from the immutable bundle — in parallel. `repro --exp all`
//! therefore runs each campaign exactly once, and every single-
//! experiment invocation prints byte-identical output to its section
//! of the `all` run.
//!
//! `--list` enumerates every experiment id. With `--store <dir>` each
//! campaign persists its snapshots in a [`scanstore::CampaignStore`]
//! under `<dir>/<campaign>`: the first run collects (resuming from the
//! last committed segment if a previous run was killed), subsequent
//! runs serve the artifacts from disk without re-simulation.
//!
//! Observability:
//!
//! * `--metrics <path>` — write a one-shot telemetry snapshot (JSON)
//!   of every counter/gauge/histogram touched by the run, including
//!   the once-per-campaign proof counters `collect.world_builds` and
//!   `collect.campaign_runs{campaign=…}`;
//! * `--trace <path>` — stream JSON-lines span/event records (sim-time
//!   only, byte-stable for a fixed seed);
//! * `--quiet` / `-v` — status verbosity on stderr (reports on stdout
//!   are unaffected).
//!
//! Chaos-ready scanning:
//!
//! * `--faults <profile>` — install a named [`netsim::FaultPlan`]
//!   (`flaky`, `bursty`, `outage`, `flappy`, `ratelimited`, `hostile`)
//!   into the simulated network; implies 3 probe attempts for the
//!   retrying campaigns unless `--retries` says otherwise;
//! * `--retries <n>` — total probe attempts per retrying campaign
//!   (enumeration stays single-probe per the paper's Sec. 2.2);
//! * `--strict-coverage <pct>` — print the per-campaign coverage
//!   summary as usual, but exit with code 3 if any campaign's response
//!   coverage falls below the gate.

use goingwild::experiments::{self, known_experiment, DeriveOptions, Experiment, REGISTRY};
use goingwild::{collect_bundle, BundleOptions, CampaignKind, WorldConfig};
use netsim::FaultPlan;
use scanner::ProbePolicy;
use std::collections::BTreeSet;
use std::path::PathBuf;

struct Args {
    exp: String,
    scale: f64,
    weeks: u32,
    seed: u64,
    snoop_sample: usize,
    /// Named network fault profile injected into the simulation.
    faults: Option<String>,
    /// Probe attempts per retrying campaign (`None` = 1, or 3 when
    /// `--faults` is set).
    retries: Option<u32>,
    /// Exit non-zero when any campaign's coverage falls below this
    /// percentage.
    strict_coverage: Option<f64>,
    /// Also dump machine-readable reports to this JSON file.
    json: Option<String>,
    /// Persist campaign snapshots under this directory.
    store: Option<PathBuf>,
    /// Write a one-shot telemetry metrics snapshot to this JSON file.
    metrics: Option<String>,
    /// Stream JSON-lines trace records (spans + events) to this file.
    trace: Option<String>,
    /// Status verbosity on stderr: 0 = --quiet, 1 = default, 2 = -v.
    verbosity: u8,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("run `repro --list` for the experiment ids, or see --help in the crate docs");
    std::process::exit(2);
}

fn print_experiment_list() {
    println!("experiment ids accepted by --exp (plus `all`):");
    for e in REGISTRY {
        println!("  {:<10} {}", e.id, e.title);
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        exp: "all".to_string(),
        scale: 0.0005,
        weeks: 55,
        seed: 2015_1028,
        snoop_sample: 1_500,
        faults: None,
        retries: None,
        strict_coverage: None,
        json: None,
        store: None,
        metrics: None,
        trace: None,
        verbosity: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{a} requires a value")))
        };
        match a.as_str() {
            "--exp" => args.exp = grab(),
            "--scale" => args.scale = grab().parse().expect("scale"),
            "--weeks" => args.weeks = grab().parse().expect("weeks"),
            "--seed" => args.seed = grab().parse().expect("seed"),
            "--snoop-sample" => args.snoop_sample = grab().parse().expect("snoop sample"),
            "--faults" => args.faults = Some(grab()),
            "--retries" => args.retries = Some(grab().parse().expect("retries")),
            "--strict-coverage" => {
                args.strict_coverage = Some(grab().parse().expect("strict coverage pct"))
            }
            "--json" => args.json = Some(grab()),
            "--store" => args.store = Some(PathBuf::from(grab())),
            "--metrics" => args.metrics = Some(grab()),
            "--trace" => args.trace = Some(grab()),
            "--quiet" | "-q" => args.verbosity = 0,
            "-v" | "--verbose" => args.verbosity = 2,
            "--list" => {
                print_experiment_list();
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other}")),
        }
    }
    if !known_experiment(&args.exp) {
        usage_error(&format!("unknown experiment id `{}`", args.exp));
    }
    if let Some(profile) = &args.faults {
        if FaultPlan::named(profile, 0).is_none() {
            usage_error(&format!(
                "unknown fault profile `{profile}`; known profiles: {}",
                FaultPlan::PROFILES.join(", ")
            ));
        }
    }
    if args.retries == Some(0) {
        usage_error("--retries must be at least 1 (total probe attempts)");
    }
    if let Some(pct) = args.strict_coverage {
        if !(0.0..=100.0).contains(&pct) {
            usage_error("--strict-coverage expects a percentage in 0..=100");
        }
    }
    // Fail fast on unwritable outputs, before hours of simulation.
    if let Some(path) = &args.json {
        if let Err(e) = probe_writable_file(path) {
            usage_error(&format!("--json path {path} is not writable: {e}"));
        }
    }
    if let Some(dir) = &args.store {
        if let Err(e) = probe_writable_dir(dir) {
            usage_error(&format!(
                "--store dir {} is not writable: {e}",
                dir.display()
            ));
        }
    }
    if let Some(path) = &args.metrics {
        if let Err(e) = probe_writable_file(path) {
            usage_error(&format!("--metrics path {path} is not writable: {e}"));
        }
    }
    if let Some(path) = &args.trace {
        if let Err(e) = probe_writable_file(path) {
            usage_error(&format!("--trace path {path} is not writable: {e}"));
        }
    }
    args
}

/// Verifies the JSON report path can be created without clobbering
/// anything on failure (existing files are left untouched).
fn probe_writable_file(path: &str) -> std::io::Result<()> {
    use std::fs::OpenOptions;
    let existed = std::path::Path::new(path).exists();
    OpenOptions::new().append(true).create(true).open(path)?;
    if !existed {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

/// Verifies the store directory exists (creating it if needed) and
/// accepts writes.
fn probe_writable_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let probe = dir.join(".repro-write-probe.tmp");
    std::fs::write(&probe, b"probe")?;
    std::fs::remove_file(&probe)
}

fn cfg_of(args: &Args) -> WorldConfig {
    WorldConfig {
        seed: args.seed,
        scale: args.scale,
        udp_loss: 0.004,
        weeks: args.weeks,
    }
}

fn main() {
    let args = parse_args();
    telemetry::set_verbosity(match args.verbosity {
        0 => telemetry::Level::Error,
        1 => telemetry::Level::Info,
        _ => telemetry::Level::Debug,
    });
    if let Some(path) = &args.trace {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| usage_error(&format!("--trace path {path}: {e}")));
        telemetry::attach_trace(Box::new(std::io::BufWriter::new(file)));
    }
    let cfg = cfg_of(&args);
    let mut json_out = serde_json::Map::new();
    println!(
        "# Going Wild reproduction — scale {} (≈{} resolvers), seed {}\n",
        cfg.scale,
        (26_800_000.0 * cfg.scale) as u64,
        cfg.seed
    );

    // Select experiments, union their campaign requirements, collect
    // the bundle once, then derive every artifact from it in parallel.
    let selected: Vec<&'static Experiment> = if args.exp == "all" {
        // Subsumed experiments' sections already appear byte-for-byte
        // inside their subsumer's report; skip them so `all` prints
        // each section exactly once.
        REGISTRY
            .iter()
            .filter(|e| e.subsumed_by.is_none())
            .collect()
    } else {
        vec![experiments::experiment(&args.exp).expect("validated by known_experiment")]
    };
    let kinds: Vec<CampaignKind> = selected
        .iter()
        .flat_map(|e| e.requires.iter().copied())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let fault_plan = args
        .faults
        .as_deref()
        .map(|p| FaultPlan::named(p, args.seed).expect("validated by parse_args"));
    // A fault profile without an explicit --retries implies the
    // chaos-ready default of 3 attempts; otherwise campaigns stay
    // single-probe (byte-identical to the pre-fault pipeline).
    let attempts = args
        .retries
        .unwrap_or(if fault_plan.is_some() { 3 } else { 1 });
    let bundle_opts = BundleOptions {
        seed: args.seed,
        weeks: args.weeks,
        snoop_sample: args.snoop_sample,
        faults: fault_plan,
        probe: ProbePolicy::retrying(attempts),
        ..BundleOptions::new(cfg.clone())
    };
    let bundle =
        collect_bundle(&bundle_opts, &kinds, args.store.as_deref()).unwrap_or_else(|e| match &args
            .store
        {
            Some(dir) => die_store(dir, &e),
            None => {
                eprintln!("repro: bundle collection failed: {e}");
                std::process::exit(1);
            }
        });
    let derive_opts = DeriveOptions {
        cfg: cfg.clone(),
        ..DeriveOptions::default()
    };
    let outputs = experiments::derive_all(&bundle, &selected, &derive_opts);
    let mut failed = false;
    for (exp, out) in selected.iter().zip(outputs) {
        match out {
            Ok(out) => {
                println!("{}", out.text);
                if args.json.is_some() {
                    if let Some((key, value)) = out.json {
                        // Experiments sharing a data product emit the
                        // same key; first writer wins.
                        if json_out.get(key).is_none() {
                            json_out.insert(key.to_string(), value);
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("repro: experiment {} failed: {e}", exp.id);
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }

    let coverage = bundle.coverage();
    if !coverage.is_empty() {
        println!("# Campaign coverage (this collection)");
        for (kind, cov) in coverage {
            println!(
                "  {:<8} {:>6.2}%  attempted {}, answered {}, gave up {}, unreachable {}, retries {}{}",
                kind.name(),
                100.0 * cov.fraction(),
                cov.attempted,
                cov.answered,
                cov.gave_up,
                cov.unreachable,
                cov.retries,
                if cov.space { " (address space)" } else { "" },
            );
        }
        println!();
        if args.json.is_some() {
            let cov_json: std::collections::BTreeMap<&'static str, &scanner::Coverage> =
                coverage.iter().map(|(k, c)| (k.name(), c)).collect();
            json_out.insert("coverage".into(), serde_json::to_value(&cov_json).unwrap());
        }
    }

    let store_stats = bundle.store_stats();
    if !store_stats.is_empty() {
        println!(
            "# Snapshot store — {}",
            args.store.as_ref().expect("store set").display()
        );
        for (campaign, s) in &store_stats {
            println!(
                "  {campaign:<8} {} segments, {} live records, {} bytes on disk ({:.1}x vs JSON lines), {} recovery events{}",
                s.segments,
                s.live_records,
                s.bytes_written,
                s.compression_ratio,
                s.recovery_events,
                match s.resumed_at {
                    Some(seq) => format!(", resumed at segment {seq}"),
                    None => String::new(),
                }
            );
        }
        println!();
        if args.json.is_some() {
            let stores: std::collections::BTreeMap<String, &scanstore::StoreStats> = store_stats
                .iter()
                .map(|(campaign, s)| ((*campaign).to_string(), s))
                .collect();
            json_out.insert("store".into(), serde_json::to_value(&stores).unwrap());
        }
    }

    if let Some(path) = &args.json {
        std::fs::write(path, serde_json::to_string_pretty(&json_out).unwrap())
            .expect("write json report");
        telemetry::info(
            "repro.json",
            "wrote machine-readable reports",
            &[("path", path.as_str().into())],
            None,
        );
    }

    // Flush the trace stream before the metrics snapshot so the two
    // artifacts are consistent with each other.
    let _ = telemetry::detach_trace();
    if let Some(path) = &args.metrics {
        let snap = telemetry::snapshot();
        std::fs::write(path, snap.to_json()).expect("write metrics snapshot");
        if args.verbosity >= 2 {
            eprint!("{}", snap.to_table());
        }
        telemetry::info(
            "repro.metrics",
            "wrote telemetry snapshot",
            &[("path", path.as_str().into())],
            None,
        );
    }

    // The strict gate runs last so every artifact (reports, JSON,
    // metrics, traces) is written even for a degraded run.
    if let Some(pct) = args.strict_coverage {
        let threshold = pct / 100.0;
        let degraded = bundle.degraded(threshold);
        if !degraded.is_empty() {
            for kind in &degraded {
                let cov = &bundle.coverage()[kind];
                eprintln!(
                    "repro: campaign `{}` coverage {:.2}% is below the --strict-coverage gate of {pct}%",
                    kind.name(),
                    100.0 * cov.fraction(),
                );
            }
            std::process::exit(3);
        }
        eprintln!(
            "repro: strict coverage gate passed ({} campaigns >= {pct}%)",
            bundle.coverage().len()
        );
    }
}

/// A store failure is an environment problem, not a bug — report and
/// exit non-zero instead of panicking.
fn die_store(dir: &std::path::Path, err: &std::io::Error) -> ! {
    eprintln!("repro: snapshot store at {} failed: {err}", dir.display());
    std::process::exit(1);
}
