//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro --exp all  --scale 0.001 --weeks 55 --seed 20151028
//! repro --exp fig1 --weeks 12
//! repro --exp fig1 --store runs/main   # collect once, re-serve from disk
//! repro --list
//! ```
//!
//! `--list` enumerates every experiment id. With `--store <dir>` the
//! fig1/tab1/tab2/fig2/tab3 campaigns persist their snapshots in a
//! [`scanstore::CampaignStore`] under `<dir>`: the first run collects
//! (resuming from the last committed segment if a previous run was
//! killed), subsequent runs serve the figures from disk without
//! re-simulation.
//!
//! Observability:
//!
//! * `--metrics <path>` — write a one-shot telemetry snapshot (JSON)
//!   of every counter/gauge/histogram touched by the run;
//! * `--trace <path>` — stream JSON-lines span/event records (sim-time
//!   only, byte-stable for a fixed seed);
//! * `--quiet` / `-v` — status verbosity on stderr (reports on stdout
//!   are unaffected).

use goingwild::experiments::{
    self, fig1_weekly_counts, fig2_churn, known_experiment, table1_country_flux, table2_rir_flux,
    table3_software, table4_devices, utilization, EXPERIMENTS,
};
use goingwild::{report, run_analysis, AnalysisOptions, WorldConfig};
use scanner::enumerate;
use scanstore::StoreStats;
use std::path::PathBuf;
use worldgen::build_world;

struct Args {
    exp: String,
    scale: f64,
    weeks: u32,
    seed: u64,
    snoop_sample: usize,
    /// Also dump machine-readable reports to this JSON file.
    json: Option<String>,
    /// Persist campaign snapshots under this directory.
    store: Option<PathBuf>,
    /// Write a one-shot telemetry metrics snapshot to this JSON file.
    metrics: Option<String>,
    /// Stream JSON-lines trace records (spans + events) to this file.
    trace: Option<String>,
    /// Status verbosity on stderr: 0 = --quiet, 1 = default, 2 = -v.
    verbosity: u8,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("run `repro --list` for the experiment ids, or see --help in the crate docs");
    std::process::exit(2);
}

fn print_experiment_list() {
    println!("experiment ids accepted by --exp (plus `all`):");
    for (id, what) in EXPERIMENTS {
        println!("  {id:<10} {what}");
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        exp: "all".to_string(),
        scale: 0.0005,
        weeks: 55,
        seed: 2015_1028,
        snoop_sample: 1_500,
        json: None,
        store: None,
        metrics: None,
        trace: None,
        verbosity: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{a} requires a value")))
        };
        match a.as_str() {
            "--exp" => args.exp = grab(),
            "--scale" => args.scale = grab().parse().expect("scale"),
            "--weeks" => args.weeks = grab().parse().expect("weeks"),
            "--seed" => args.seed = grab().parse().expect("seed"),
            "--snoop-sample" => args.snoop_sample = grab().parse().expect("snoop sample"),
            "--json" => args.json = Some(grab()),
            "--store" => args.store = Some(PathBuf::from(grab())),
            "--metrics" => args.metrics = Some(grab()),
            "--trace" => args.trace = Some(grab()),
            "--quiet" | "-q" => args.verbosity = 0,
            "-v" | "--verbose" => args.verbosity = 2,
            "--list" => {
                print_experiment_list();
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other}")),
        }
    }
    if !known_experiment(&args.exp) {
        usage_error(&format!("unknown experiment id `{}`", args.exp));
    }
    // Fail fast on unwritable outputs, before hours of simulation.
    if let Some(path) = &args.json {
        if let Err(e) = probe_writable_file(path) {
            usage_error(&format!("--json path {path} is not writable: {e}"));
        }
    }
    if let Some(dir) = &args.store {
        if let Err(e) = probe_writable_dir(dir) {
            usage_error(&format!(
                "--store dir {} is not writable: {e}",
                dir.display()
            ));
        }
    }
    if let Some(path) = &args.metrics {
        if let Err(e) = probe_writable_file(path) {
            usage_error(&format!("--metrics path {path} is not writable: {e}"));
        }
    }
    if let Some(path) = &args.trace {
        if let Err(e) = probe_writable_file(path) {
            usage_error(&format!("--trace path {path} is not writable: {e}"));
        }
    }
    args
}

/// Verifies the JSON report path can be created without clobbering
/// anything on failure (existing files are left untouched).
fn probe_writable_file(path: &str) -> std::io::Result<()> {
    use std::fs::OpenOptions;
    let existed = std::path::Path::new(path).exists();
    OpenOptions::new().append(true).create(true).open(path)?;
    if !existed {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

/// Verifies the store directory exists (creating it if needed) and
/// accepts writes.
fn probe_writable_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let probe = dir.join(".repro-write-probe.tmp");
    std::fs::write(&probe, b"probe")?;
    std::fs::remove_file(&probe)
}

fn cfg_of(args: &Args) -> WorldConfig {
    WorldConfig {
        seed: args.seed,
        scale: args.scale,
        udp_loss: 0.004,
        weeks: args.weeks,
    }
}

fn main() {
    let args = parse_args();
    telemetry::set_verbosity(match args.verbosity {
        0 => telemetry::Level::Error,
        1 => telemetry::Level::Info,
        _ => telemetry::Level::Debug,
    });
    if let Some(path) = &args.trace {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| usage_error(&format!("--trace path {path}: {e}")));
        telemetry::attach_trace(Box::new(std::io::BufWriter::new(file)));
    }
    let cfg = cfg_of(&args);
    let mut json_out = serde_json::Map::new();
    println!(
        "# Going Wild reproduction — scale {} (≈{} resolvers), seed {}\n",
        cfg.scale,
        (26_800_000.0 * cfg.scale) as u64,
        cfg.seed
    );
    let want = |id: &str| {
        args.exp == "all" || args.exp == id || (args.exp == "analysis" && matches!(id, "analysis"))
    };
    let mut store_stats: Vec<(&str, StoreStats)> = Vec::new();

    // Figure 1 + Tables 1–2 share the weekly-scan series.
    if want("fig1") || want("tab1") || want("tab2") {
        let fig1 = match &args.store {
            Some(dir) => {
                let (fig1, stats) = goingwild::stored_fig1(cfg.clone(), args.weeks, dir)
                    .unwrap_or_else(|e| die_store(dir, &e));
                store_stats.push(("weekly", stats));
                fig1
            }
            None => fig1_weekly_counts(cfg.clone(), args.weeks),
        };
        if args.json.is_some() {
            json_out.insert("fig1".into(), serde_json::to_value(&fig1).unwrap());
        }
        if want("fig1") {
            println!("{}", report::render_fig1(&fig1));
        }
        if want("tab1") {
            println!(
                "{}",
                report::render_flux(
                    "Table 1 — resolver fluctuation per country (Top 10)",
                    &table1_country_flux(&fig1, 10)
                )
            );
            println!("(paper: US −14.2%, CN −13.0%, TR −32.2%, …, IN +12.7%, TW −57.3%)\n");
        }
        if want("tab2") {
            println!(
                "{}",
                report::render_flux(
                    "Table 2 — resolver fluctuation per RIR",
                    &table2_rir_flux(&fig1)
                )
            );
            println!(
                "(paper: RIPE −33.2%, APNIC −24.5%, LACNIC −35.1%, ARIN −12.1%, AFRINIC −8.6%)\n"
            );
        }
    }

    // Tables 3–4 + utilization + verification run on a fresh world.
    if want("tab3") || want("tab4") || want("util") || want("verify") {
        let mut world = build_world(cfg.clone());
        let vantage = world.scanner_ip;
        let fleet = enumerate(&mut world, vantage, args.seed).noerror_ips();
        telemetry::info(
            "repro.fleet",
            "enumerated fingerprinting fleet",
            &[("open_resolvers", fleet.len().into())],
            Some(world.now().millis()),
        );
        if want("tab3") {
            let t3 = match &args.store {
                Some(dir) => {
                    let (t3, stats) = goingwild::stored_table3(cfg.clone(), args.seed, dir)
                        .unwrap_or_else(|e| die_store(dir, &e));
                    store_stats.push(("chaos", stats));
                    t3
                }
                None => table3_software(&mut world, &fleet, args.seed),
            };
            if args.json.is_some() {
                json_out.insert("tab3".into(), serde_json::to_value(&t3).unwrap());
            }
            println!("{}", report::render_table3(&t3));
        }
        if want("tab4") {
            let t4 = table4_devices(&mut world, &fleet);
            if args.json.is_some() {
                json_out.insert("tab4".into(), serde_json::to_value(&t4).unwrap());
            }
            println!("{}", report::render_table4(&t4));
        }
        if want("util") {
            let util = utilization(&mut world, &fleet, args.snoop_sample, 36);
            if args.json.is_some() {
                json_out.insert("util".into(), serde_json::to_value(&util).unwrap());
            }
            println!("{}", report::render_util(&util));
        }
        if want("verify") {
            let mut world = build_world(cfg.clone());
            world.advance_to_week(30);
            let verification = experiments::verification(&mut world, args.seed);
            println!(
                "Sec. 2.2 verification scan: {} NOERROR hosts seen only from the second /8 ({:.2}% of {}; paper: <1%)\n",
                verification.missed_noerror,
                100.0 * verification.missed_noerror as f64
                    / verification.primary_noerror.max(1) as f64,
                verification.primary_noerror
            );
        }
    }

    if want("fig2") {
        let fig2 = match &args.store {
            Some(dir) => {
                let (fig2, stats) = goingwild::stored_fig2(cfg.clone(), args.weeks.min(55), dir)
                    .unwrap_or_else(|e| die_store(dir, &e));
                store_stats.push(("churn", stats));
                fig2
            }
            None => fig2_churn(cfg.clone(), args.weeks.min(55)),
        };
        if args.json.is_some() {
            json_out.insert("fig2".into(), serde_json::to_value(&fig2).unwrap());
        }
        println!("{}", report::render_fig2(&fig2));
    }

    if want("analysis")
        || args.exp == "tab5"
        || args.exp == "fig4"
        || args.exp == "censorship"
        || args.exp == "cases"
        || args.exp == "prefilter"
    {
        let mut world = build_world(cfg.clone());
        let analysis = run_analysis(&mut world, &AnalysisOptions::default());
        if args.json.is_some() {
            json_out.insert("analysis".into(), serde_json::to_value(&analysis).unwrap());
        }
        println!("{}", report::render_analysis(&analysis));
    }

    if want("closedloop") {
        let mut world = build_world(cfg.clone());
        let rows = experiments::closed_loop(&mut world, args.snoop_sample);
        println!("{}", experiments::render_closed_loop(&rows));
    }

    if want("ablations") {
        ablations(&cfg);
    }

    if !store_stats.is_empty() {
        println!(
            "# Snapshot store — {}",
            args.store.as_ref().expect("store set").display()
        );
        for (campaign, s) in &store_stats {
            println!(
                "  {campaign:<8} {} segments, {} live records, {} bytes on disk ({:.1}x vs JSON lines), {} recovery events{}",
                s.segments,
                s.live_records,
                s.bytes_written,
                s.compression_ratio,
                s.recovery_events,
                match s.resumed_at {
                    Some(seq) => format!(", resumed at segment {seq}"),
                    None => String::new(),
                }
            );
        }
        println!();
        if args.json.is_some() {
            let stores: std::collections::BTreeMap<String, &StoreStats> = store_stats
                .iter()
                .map(|(campaign, s)| ((*campaign).to_string(), s))
                .collect();
            json_out.insert("store".into(), serde_json::to_value(&stores).unwrap());
        }
    }

    if let Some(path) = &args.json {
        std::fs::write(path, serde_json::to_string_pretty(&json_out).unwrap())
            .expect("write json report");
        telemetry::info(
            "repro.json",
            "wrote machine-readable reports",
            &[("path", path.as_str().into())],
            None,
        );
    }

    // Flush the trace stream before the metrics snapshot so the two
    // artifacts are consistent with each other.
    let _ = telemetry::detach_trace();
    if let Some(path) = &args.metrics {
        let snap = telemetry::snapshot();
        std::fs::write(path, snap.to_json()).expect("write metrics snapshot");
        if args.verbosity >= 2 {
            eprint!("{}", snap.to_table());
        }
        telemetry::info(
            "repro.metrics",
            "wrote telemetry snapshot",
            &[("path", path.as_str().into())],
            None,
        );
    }
}

/// A store failure is an environment problem, not a bug — report and
/// exit non-zero instead of panicking.
fn die_store(dir: &std::path::Path, err: &std::io::Error) -> ! {
    eprintln!("repro: snapshot store at {} failed: {err}", dir.display());
    std::process::exit(1);
}

/// The design-choice ablations DESIGN.md calls out (A-ABL1..A-ABL4;
/// A-ABL5 lives in `bench_lfsr`).
fn ablations(cfg: &WorldConfig) {
    use htmlsim::distance::FeatureWeights;
    use htmlsim::gen::{self, PageCtx, SiteCategory};
    use htmlsim::{PageFeatures, TagInterner};

    println!("# Ablations\n");

    // ---- A-ABL1a: drop-one-feature separation, coarse families ----
    // Page *families* (bank site, error page, parking lander, phishing
    // kit, router login). The metric is the separation ratio:
    // (minimum cross-family distance) / (maximum within-family
    // distance); > 1 means a clean threshold exists.
    let mut interner = TagInterner::new();
    let mut items: Vec<(usize, PageFeatures)> = Vec::new();
    for s in 0..10u64 {
        for (family, html) in [
            (
                0usize,
                gen::legit_site(SiteCategory::Banking, &PageCtx::new("bank.example", s)),
            ),
            (1, gen::http_error(404, &PageCtx::new("e.example", s))),
            (
                2,
                gen::parking_page("parkco", &PageCtx::new(&format!("d{s}.example"), s)),
            ),
            (
                3,
                gen::phishing_kit_images("paypal", &PageCtx::new("paypal.example", s)),
            ),
            (
                4,
                gen::router_login(gen::RouterVendor::ZyRouter, &PageCtx::new("r.local", s)),
            ),
        ] {
            items.push((family, PageFeatures::extract(&html, &mut interner)));
        }
    }
    let separation = |items: &[(usize, PageFeatures)], weights: &FeatureWeights| -> f64 {
        use htmlsim::distance::page_distance;
        let mut max_within: f64 = 0.0;
        let mut min_cross = f64::INFINITY;
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                let d = page_distance(&items[i].1, &items[j].1, weights);
                if items[i].0 == items[j].0 {
                    max_within = max_within.max(d);
                } else {
                    min_cross = min_cross.min(d);
                }
            }
        }
        if max_within == 0.0 {
            f64::INFINITY
        } else {
            min_cross / max_within
        }
    };
    println!("A-ABL1a — coarse family separation (cross/within; >1 = separable):");
    println!(
        "  all 7 features : {:.2}",
        separation(&items, &FeatureWeights::default())
    );
    for f in [
        "body_len",
        "tag_multiset",
        "tag_sequence",
        "title",
        "javascript",
        "resources",
        "links",
    ] {
        println!(
            "  without {f:<13}: {:.2}",
            separation(&items, &FeatureWeights::without(f))
        );
    }

    // ---- A-ABL1b: why the fine-grained stage exists ----
    // Small *modifications* of one page (ad banner vs script injection)
    // are NOT separable by the coarse distance — within-family noise
    // (dynamic content across fetches) dwarfs the injected tag — but the
    // diff-based tag-delta clustering recovers them exactly (Sec. 3.6).
    {
        use htmlsim::diff::tag_delta;
        let mut mod_items: Vec<(usize, PageFeatures)> = Vec::new();
        let mut deltas: Vec<(usize, htmlsim::diff::TagDelta)> = Vec::new();
        for s in 0..10u64 {
            let news = gen::legit_site(SiteCategory::Alexa, &PageCtx::new("news.example", s));
            let banner = gen::inject_ad(&news, "ads.rogue.example");
            let script = gen::inject_script(&news, "js.rogue.example");
            let gt = PageFeatures::extract(&news, &mut interner);
            for (family, html) in [(0usize, banner), (1, script)] {
                let f = PageFeatures::extract(&html, &mut interner);
                deltas.push((family, tag_delta(&gt.tag_sequence, &f.tag_sequence)));
                mod_items.push((family, f));
            }
        }
        let coarse = separation(&mod_items, &FeatureWeights::default());
        let flat = classify::fine_cluster(
            &deltas.iter().map(|(_, d)| d.clone()).collect::<Vec<_>>(),
            0.3,
        );
        let mut correct = 0usize;
        for members in &flat.clusters {
            let mut counts = std::collections::HashMap::new();
            for &m in members {
                *counts.entry(deltas[m].0).or_insert(0usize) += 1;
            }
            correct += counts.values().max().copied().unwrap_or(0);
        }
        println!("\nA-ABL1b — small modifications (banner vs script injection):");
        println!(
            "  coarse separation ratio: {coarse:.2} (<1: coarse clustering cannot split them)"
        );
        println!(
            "  fine tag-delta clustering: {} clusters, purity {:.3}",
            flat.len(),
            correct as f64 / deltas.len() as f64
        );
    }

    // ---- A-ABL3: prefilter stages ----
    // Measure unexpected-rate on a CDN-heavy domain with AS-only vs
    // AS+cert, using the real pipeline at tiny scale.
    {
        let mut world = build_world(WorldConfig {
            scale: (cfg.scale / 5.0).max(0.0001),
            ..cfg.clone()
        });
        let opts = AnalysisOptions {
            domains: Some(vec![
                "wikipedia.example".into(), // CDN domain, never censored
                "gt.gwild.example".into(),
            ]),
            ..Default::default()
        };
        let analysis = run_analysis(&mut world, &opts);
        let alexa = &analysis.per_category["Alexa"];
        println!("\nA-ABL3 — CDN domain (wikipedia.example) prefiltering:");
        println!(
            "  responses {}  legit(DNS stage) {}  cert-rescued {}  unexpected-after-cert {}",
            alexa.responses, alexa.legit, alexa.cert_rescued, alexa.unexpected
        );
        println!("  (without the certificate stage, every non-home-region CDN answer would stay suspicious)");
    }

    // ---- A-ABL4: identifier channels under port rewriting ----
    {
        use dnswire::{Message, MessageBuilder, Rcode, RecordType};
        let mut ok_with_casing = 0;
        let mut ok_txid_only = 0;
        let trials = 4_096u32;
        for i in 0..trials {
            let id = (i * 8191 + 5) % (1 << 25); // spread across the 25-bit space
            let p = scanner::encode_probe(id % (1 << 25), "bet-at-home.example");
            let q = MessageBuilder::query(p.txid, p.qname.clone(), RecordType::A).build();
            let resp = MessageBuilder::response_to(&q, Rcode::NoError).build();
            let wire = resp.encode();
            let resp = Message::decode(&wire).unwrap();
            // Port rewritten: arrival offset is useless.
            if scanner::decode_probe(&resp, None) == Some(id % (1 << 25)) {
                ok_with_casing += 1;
            }
            // TXID-only decoder (high bits unrecoverable).
            // A TXID-only decoder can recover at most the low 16 bits;
            // the full identifier is unrecoverable unless it happens to
            // fit in them.
            if id < 0x10000 {
                ok_txid_only += 1;
            }
        }
        println!("\nA-ABL4 — resolver-ID recovery under response-port rewriting:");
        println!(
            "  TXID+0x20 casing: {ok_with_casing}/{trials}   TXID only: {ok_txid_only}/{trials}"
        );
    }

    // ---- A-ABL2: linkage comparison (average vs single vs complete) ----
    println!("\nA-ABL2 — linkage criterion vs cluster purity and count:");
    for linkage in [
        classify::Linkage::Average,
        classify::Linkage::Single,
        classify::Linkage::Complete,
    ] {
        for threshold in [0.2, 0.32, 0.45] {
            let features: Vec<PageFeatures> = items.iter().map(|(_, f)| f.clone()).collect();
            let flat = classify::cluster_pages_with(
                &features,
                &FeatureWeights::default(),
                threshold,
                linkage,
            );
            let mut correct = 0usize;
            for members in &flat.clusters {
                let mut counts = std::collections::HashMap::new();
                for &m in members {
                    *counts.entry(items[m].0).or_insert(0usize) += 1;
                }
                correct += counts.values().max().copied().unwrap_or(0);
            }
            println!(
                "  {linkage:?} cut {threshold:>4}: {:>2} clusters, purity {:.3}",
                flat.len(),
                correct as f64 / items.len() as f64
            );
        }
    }
}
