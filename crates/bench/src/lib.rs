//! Bench crate (criterion benches + repro binaries).

pub mod perf;
