//! Bench crate (criterion benches + repro binaries).
