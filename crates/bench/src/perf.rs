//! The normalized `BENCH_*.json` schema and its regression comparator.
//!
//! Every benchmark artifact in the repo — the `repro bench`
//! subcommand, the single-shot criterion sidecars — emits one
//! [`BenchReport`] in the `goingwild.bench.v1` shape: bench name, the
//! exact workload config, wall-clock, sim-time, peak RSS, and the key
//! pipeline counters. [`compare`] gates a fresh run against a
//! committed baseline: configs must match exactly (a benchmark against
//! a different workload is meaningless, not merely slower), and
//! wall-clock may not regress beyond the caller's threshold.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema tag carried by every report.
pub const SCHEMA: &str = "goingwild.bench.v1";

/// The workload a benchmark ran. Two reports are comparable only when
/// their configs are identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct BenchConfig {
    /// Experiment selector (`all`, `fig1`, …); empty for micro-benches.
    pub exp: String,
    /// World scale factor.
    pub scale: f64,
    /// Simulated weeks.
    pub weeks: u32,
    /// World seed.
    pub seed: u64,
    /// Snoop-campaign sample size.
    pub snoop_sample: usize,
    /// Named fault profile, if any.
    pub faults: Option<String>,
    /// Probe attempts per retrying campaign.
    pub retries: u32,
}

/// One benchmark result in the normalized schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub bench_schema: String,
    /// Benchmark name (`repro_all`, `recorder_overhead`, …).
    pub bench: String,
    /// The workload configuration.
    pub config: BenchConfig,
    /// Elapsed wall-clock of the measured section, in milliseconds.
    pub wall_clock_ms: u64,
    /// Simulated time covered by the run, in milliseconds.
    pub sim_time_ms: u64,
    /// Peak resident set size of the process, in KiB.
    pub peak_rss_kb: u64,
    /// Key pipeline counters at the end of the run.
    pub counters: BTreeMap<String, u64>,
    /// Derived figures (ratios, percentages) specific to the bench.
    pub derived: BTreeMap<String, f64>,
    /// Free-form provenance note.
    pub notes: String,
}

impl BenchReport {
    /// An empty report for `bench` over `config`, stamped with the
    /// schema tag.
    pub fn new(bench: &str, config: BenchConfig) -> BenchReport {
        BenchReport {
            bench_schema: SCHEMA.to_string(),
            bench: bench.to_string(),
            config,
            wall_clock_ms: 0,
            sim_time_ms: 0,
            peak_rss_kb: 0,
            counters: BTreeMap::new(),
            derived: BTreeMap::new(),
            notes: String::new(),
        }
    }
}

/// Why [`compare`] rejected a run.
#[derive(Debug, Clone, PartialEq)]
pub enum CompareError {
    /// The baseline file is not a `goingwild.bench.v1` report.
    BadSchema(String),
    /// Bench name or workload config differs — not comparable.
    ConfigMismatch(String),
    /// Wall-clock regressed beyond the threshold.
    Regression(String),
}

impl std::fmt::Display for CompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompareError::BadSchema(m)
            | CompareError::ConfigMismatch(m)
            | CompareError::Regression(m) => f.write_str(m),
        }
    }
}

/// Gates `current` against `baseline`: identical bench name and
/// config, and `current.wall_clock_ms` at most
/// `(1 + threshold_pct/100) ×` the baseline's. Returns a one-line
/// human-readable verdict on success.
pub fn compare(
    current: &BenchReport,
    baseline: &BenchReport,
    threshold_pct: f64,
) -> Result<String, CompareError> {
    if baseline.bench_schema != SCHEMA {
        return Err(CompareError::BadSchema(format!(
            "baseline schema `{}` is not `{SCHEMA}`",
            baseline.bench_schema
        )));
    }
    if current.bench != baseline.bench {
        return Err(CompareError::ConfigMismatch(format!(
            "bench `{}` cannot be compared against baseline `{}`",
            current.bench, baseline.bench
        )));
    }
    if current.config != baseline.config {
        return Err(CompareError::ConfigMismatch(format!(
            "workload config differs from baseline: current {:?} vs baseline {:?}",
            current.config, baseline.config
        )));
    }
    let limit = baseline.wall_clock_ms as f64 * (1.0 + threshold_pct / 100.0);
    let delta_pct = if baseline.wall_clock_ms > 0 {
        100.0 * (current.wall_clock_ms as f64 - baseline.wall_clock_ms as f64)
            / baseline.wall_clock_ms as f64
    } else {
        0.0
    };
    if current.wall_clock_ms as f64 > limit {
        return Err(CompareError::Regression(format!(
            "wall clock regressed: {} ms vs baseline {} ms ({delta_pct:+.1}%, threshold +{threshold_pct}%)",
            current.wall_clock_ms, baseline.wall_clock_ms
        )));
    }
    Ok(format!(
        "within threshold: {} ms vs baseline {} ms ({delta_pct:+.1}%, threshold +{threshold_pct}%)",
        current.wall_clock_ms, baseline.wall_clock_ms
    ))
}

/// Peak resident set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`); 0 where procfs is unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(wall: u64) -> BenchReport {
        let mut r = BenchReport::new(
            "repro_all",
            BenchConfig {
                exp: "all".into(),
                scale: 0.0002,
                weeks: 3,
                seed: 20151028,
                snoop_sample: 200,
                faults: None,
                retries: 1,
            },
        );
        r.wall_clock_ms = wall;
        r
    }

    #[test]
    fn comparator_gates_on_threshold() {
        let base = report(1000);
        assert!(compare(&report(1000), &base, 10.0).is_ok());
        assert!(compare(&report(1099), &base, 10.0).is_ok());
        assert!(compare(&report(500), &base, 10.0).is_ok(), "faster is fine");
        match compare(&report(1200), &base, 10.0) {
            Err(CompareError::Regression(msg)) => assert!(msg.contains("+20.0%"), "{msg}"),
            other => panic!("expected regression, got {other:?}"),
        }
    }

    #[test]
    fn comparator_rejects_mismatched_workloads() {
        let base = report(1000);
        let mut other = report(1000);
        other.config.weeks = 4;
        assert!(matches!(
            compare(&other, &base, 10.0),
            Err(CompareError::ConfigMismatch(_))
        ));
        let mut renamed = report(1000);
        renamed.bench = "other".into();
        assert!(matches!(
            compare(&renamed, &base, 10.0),
            Err(CompareError::ConfigMismatch(_))
        ));
        let mut old = report(1000);
        old.bench_schema = "goingwild.metrics.v1".into();
        assert!(matches!(
            compare(&report(1000), &old, 10.0),
            Err(CompareError::BadSchema(_))
        ));
    }

    #[test]
    fn reports_roundtrip_through_json() {
        let mut r = report(42);
        r.sim_time_ms = 7 * 24 * 3600 * 1000;
        r.peak_rss_kb = peak_rss_kb();
        r.counters.insert("netsim.udp_sent".into(), 9);
        r.derived.insert("overhead_pct".into(), 1.5);
        let js = serde_json::to_string_pretty(&r).unwrap();
        let back: BenchReport = serde_json::from_str(&js).unwrap();
        assert_eq!(back.bench_schema, SCHEMA);
        assert_eq!(back.wall_clock_ms, 42);
        assert_eq!(back.counters["netsim.udp_sent"], 9);
        assert_eq!(back.derived["overhead_pct"], 1.5);
        assert_eq!(back.config, r.config);
    }
}
