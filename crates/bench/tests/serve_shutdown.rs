//! Graceful-shutdown integration test: spawn the real `repro serve`
//! daemon, hit it, send SIGTERM, and verify it drains and flushes the
//! final metrics snapshot before exiting cleanly.

#![cfg(unix)]

use scanstore::{CampaignStore, Observation, ObservationSink, SnapshotSink};
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("gw-shutdown-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn seed_store(root: &Path) {
    let mut store = CampaignStore::open(root.join("weekly")).unwrap();
    for ip in 1u32..=64 {
        store.observe(Observation::at(ip, 0, 1_000));
    }
    store.commit("week-0", 1_000, &[]).unwrap();
}

#[test]
fn sigterm_drains_and_flushes_metrics() {
    let tmp = TempDir::new("sigterm");
    seed_store(&tmp.0);
    let metrics = tmp.0.join("serve-metrics.json");

    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "serve",
            "--store",
            tmp.0.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // The daemon announces its bound port on stdout once it is ready.
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let announce = lines.next().unwrap().unwrap();
    let addr = announce
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected announce line: {announce}"))
        .to_string();

    // It answers queries while alive.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET /classify?ip=0.0.0.1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("\"found\":true"), "{response}");

    // SIGTERM → drain → metrics flush → clean exit.
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(status.success(), "kill -TERM failed");

    let deadline = Instant::now() + Duration::from_secs(10);
    let exit = loop {
        if let Some(exit) = child.try_wait().unwrap() {
            break exit;
        }
        assert!(Instant::now() < deadline, "daemon ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(exit.success(), "daemon exited non-zero: {exit:?}");

    let mut stderr = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(
        stderr.contains("drained"),
        "no drain confirmation: {stderr}"
    );

    // The final snapshot was written and records the served request.
    let snapshot = std::fs::read_to_string(&metrics).unwrap();
    assert!(snapshot.contains("serve.requests"), "{snapshot}");
    assert!(snapshot.contains("serve.shutdown.requests"), "{snapshot}");
}

#[test]
fn serve_on_missing_store_fails_with_one_line_error() {
    let tmp = TempDir::new("missing");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--store", tmp.0.join("nope").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("repro serve:"), "{stderr}");
}

#[test]
fn trace_rejects_truncated_streams_without_panicking() {
    let tmp = TempDir::new("trace-garbage");
    let garbage = tmp.0.join("not-a-stream.gwrs");
    std::fs::write(&garbage, b"this is definitely not a GWRS recorder stream").unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["trace", garbage.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "expected exit 1");
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(
        stderr.contains("no decodable GWRS segments"),
        "missing one-line error: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "trace panicked on garbage input: {stderr}"
    );
}

#[test]
fn bench_against_missing_baseline_exits_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "bench",
            "--bench",
            "repro_all",
            "--exp",
            "fig1",
            "--scale",
            "0.00002",
            "--weeks",
            "1",
            "--against",
            "/nonexistent/baseline.json",
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2), "expected exit 2");
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("cannot read baseline"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn numeric_flag_garbage_is_a_usage_error_not_a_panic() {
    for args in [
        vec!["--weeks", "banana"],
        vec!["--seed", "not-a-number"],
        vec!["trace", "x.gwrs", "--limit", "many"],
        vec!["bench", "--threshold", "high"],
        vec!["serve", "--store", "s", "--refresh-ms", "soon"],
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(&args)
            .output()
            .unwrap();
        assert_eq!(output.status.code(), Some(2), "args {args:?}");
        let stderr = String::from_utf8(output.stderr).unwrap();
        assert!(
            stderr.contains("expects a number"),
            "args {args:?}: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "args {args:?}: {stderr}");
    }
}
