//! Store-vs-scratch equivalence and checkpoint/resume, end to end.
//!
//! The acceptance bar: `repro --exp fig1 --store <dir>` run twice must
//! produce identical output, with the second run serving from the
//! store; a killed first run must resume from the last committed
//! segment rather than week 0. These tests assert exactly that at
//! `WorldConfig::tiny` through the same library entry points the
//! binary uses.

#![allow(deprecated)]

use goingwild::experiments::{fig1_weekly_counts, fig2_churn, table1_country_flux};
use goingwild::{stored_fig1, stored_fig2, WorldConfig};
use std::fs;
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("gw-equiv-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn weekly_files(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir.join("weekly"))
        .expect("store dir")
        .map(|e| {
            let e = e.expect("dirent");
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).expect("read"),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn fig1_from_store_is_byte_identical_to_scratch() {
    const WEEKS: u32 = 3;
    let cfg = WorldConfig::tiny(0xE0);
    let tmp = TempDir::new("fig1");

    let scratch = fig1_weekly_counts(cfg.clone(), WEEKS);
    let (first, stats1) = stored_fig1(cfg.clone(), WEEKS, &tmp.0).expect("collect into store");
    assert_eq!(stats1.segments, WEEKS);
    assert_eq!(stats1.resumed_at, None, "first run starts from scratch");
    assert_eq!(
        serde_json::to_string(&scratch).unwrap(),
        serde_json::to_string(&first).unwrap(),
        "store-backed fig1 must match the in-memory run byte-for-byte"
    );
    // Tables 1–2 derive from the same report, so equality carries over.
    assert_eq!(
        serde_json::to_string(&table1_country_flux(&scratch, 10)).unwrap(),
        serde_json::to_string(&table1_country_flux(&first, 10)).unwrap(),
    );

    // Second run: served from disk, nothing re-simulated.
    let before = weekly_files(&tmp.0);
    let (second, stats2) = stored_fig1(cfg, WEEKS, &tmp.0).expect("serve from store");
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&second).unwrap(),
    );
    assert_eq!(
        stats2.resumed_at,
        Some(WEEKS),
        "second run reads the checkpoint"
    );
    assert_eq!(
        before,
        weekly_files(&tmp.0),
        "a fully-collected store must not be rewritten by a read"
    );
}

#[test]
fn killed_weekly_campaign_resumes_from_checkpoint() {
    const WEEKS: u32 = 3;
    let cfg = WorldConfig::tiny(0xE1);
    let tmp = TempDir::new("resume");

    // A run killed after committing week 0 (simulated by collecting a
    // shorter campaign, then tearing the next segment's write).
    stored_fig1(cfg.clone(), 1, &tmp.0).expect("partial campaign");
    fs::write(tmp.0.join("weekly/seg-00001.gws"), b"torn mid-write").unwrap();
    let seg0 = fs::read(tmp.0.join("weekly/seg-00000.gws")).unwrap();

    let (resumed, stats) = stored_fig1(cfg.clone(), WEEKS, &tmp.0).expect("resume");
    assert_eq!(stats.segments, WEEKS);
    assert_eq!(
        stats.resumed_at,
        Some(1),
        "resumes after week 0, not from week 0"
    );
    assert_eq!(
        fs::read(tmp.0.join("weekly/seg-00000.gws")).unwrap(),
        seg0,
        "the committed prefix is never rewritten"
    );
    // The tiny world is loss-free, so the resumed campaign reproduces
    // the uninterrupted run exactly.
    let scratch = fig1_weekly_counts(cfg, WEEKS);
    assert_eq!(
        serde_json::to_string(&scratch).unwrap(),
        serde_json::to_string(&resumed).unwrap(),
    );
}

#[test]
fn fig2_from_store_matches_scratch_and_reopens_clean() {
    const WEEKS: u32 = 2;
    let cfg = WorldConfig::tiny(0xE2);
    let tmp = TempDir::new("fig2");

    let scratch = fig2_churn(cfg.clone(), WEEKS);
    let (first, stats1) = stored_fig2(cfg.clone(), WEEKS, &tmp.0).expect("collect churn");
    // cohort + day1 + one snapshot per weekly probe.
    assert_eq!(stats1.segments, WEEKS + 2);
    assert_eq!(
        serde_json::to_string(&scratch).unwrap(),
        serde_json::to_string(&first).unwrap(),
        "store-backed fig2 must match the in-memory run byte-for-byte"
    );

    let (second, stats2) = stored_fig2(cfg, WEEKS, &tmp.0).expect("serve from store");
    assert_eq!(stats2.resumed_at, Some(WEEKS + 2));
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&second).unwrap(),
    );
}
