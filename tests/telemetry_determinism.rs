//! Telemetry must never perturb the science: traces are byte-stable
//! for a fixed seed, and the derived reports are identical whether or
//! not any exporter is attached.

use goingwild::{collect_weekly, fig1_from_source, run_analysis, AnalysisOptions, WorldConfig};
use scanstore::MemoryStore;
use std::sync::{Arc, Mutex, OnceLock};
use worldgen::build_world;

/// The trace sink and span-id counter are process-global, so the tests
/// in this binary take turns.
fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// An in-memory trace sink the test can read back after detaching.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn cfg() -> WorldConfig {
    WorldConfig {
        seed: 0xD1CE,
        scale: 0.0001,
        udp_loss: 0.004,
        weeks: 3,
    }
}

fn traced_weekly_run() -> Vec<u8> {
    let buf = SharedBuf::default();
    telemetry::attach_trace(Box::new(buf.clone()));
    let mut store = MemoryStore::new();
    collect_weekly(cfg(), 3, 0, &mut store).expect("collect");
    telemetry::detach_trace().expect("flush trace");
    buf.contents()
}

#[test]
fn traces_are_byte_identical_across_runs() {
    let _guard = exclusive();
    let first = traced_weekly_run();
    let second = traced_weekly_run();
    assert!(!first.is_empty(), "trace captured nothing");
    assert_eq!(
        first, second,
        "same seed must produce byte-identical traces"
    );
    // Trace lines are sim-time only: wall-clock would break stability.
    let text = String::from_utf8(first).expect("utf8");
    for line in text.lines() {
        assert!(
            !line.contains("wall"),
            "wall time leaked into trace: {line}"
        );
    }
}

#[test]
fn reports_are_unchanged_by_exporters() {
    let _guard = exclusive();

    // Bare run: no trace attached, registry left as-is.
    let bare = {
        let mut store = MemoryStore::new();
        collect_weekly(cfg(), 3, 0, &mut store).expect("collect");
        fig1_from_source(&store).expect("derive")
    };

    // Instrumented run: trace attached, registry cleared first.
    let instrumented = {
        telemetry::global().clear();
        let buf = SharedBuf::default();
        telemetry::attach_trace(Box::new(buf.clone()));
        let mut store = MemoryStore::new();
        collect_weekly(cfg(), 3, 0, &mut store).expect("collect");
        telemetry::detach_trace().expect("flush trace");
        assert!(!buf.contents().is_empty());
        fig1_from_source(&store).expect("derive")
    };

    assert_eq!(
        serde_json::to_string(&bare).unwrap(),
        serde_json::to_string(&instrumented).unwrap(),
        "attaching exporters must not change the derived report"
    );
}

#[test]
fn analysis_report_is_unchanged_by_exporters() {
    let _guard = exclusive();
    let run = |traced: bool| {
        let buf = SharedBuf::default();
        if traced {
            telemetry::attach_trace(Box::new(buf.clone()));
        }
        let mut world = build_world(cfg());
        let report = run_analysis(&mut world, &AnalysisOptions::default());
        if traced {
            telemetry::detach_trace().expect("flush trace");
        }
        serde_json::to_string(&report).unwrap()
    };
    assert_eq!(run(false), run(true));
}
