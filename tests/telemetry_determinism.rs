//! Telemetry must never perturb the science: traces are byte-stable
//! for a fixed seed, and the derived reports are identical whether or
//! not any exporter is attached.

use goingwild::{
    collect_bundle, collect_weekly, experiments, fig1_from_source, run_analysis, AnalysisOptions,
    BundleOptions, CampaignKind, DeriveOptions, WorldConfig,
};
use scanstore::MemoryStore;
use std::sync::{Arc, Mutex, OnceLock};
use worldgen::build_world;

/// The trace sink and span-id counter are process-global, so the tests
/// in this binary take turns.
fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// An in-memory trace sink the test can read back after detaching.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn cfg() -> WorldConfig {
    WorldConfig {
        seed: 0xD1CE,
        scale: 0.0001,
        udp_loss: 0.004,
        weeks: 3,
    }
}

fn traced_weekly_run() -> Vec<u8> {
    let buf = SharedBuf::default();
    telemetry::attach_trace(Box::new(buf.clone()));
    let mut store = MemoryStore::new();
    collect_weekly(cfg(), 3, 0, &mut store).expect("collect");
    telemetry::detach_trace().expect("flush trace");
    buf.contents()
}

#[test]
fn traces_are_byte_identical_across_runs() {
    let _guard = exclusive();
    let first = traced_weekly_run();
    let second = traced_weekly_run();
    assert!(!first.is_empty(), "trace captured nothing");
    assert_eq!(
        first, second,
        "same seed must produce byte-identical traces"
    );
    // Trace lines are sim-time only: wall-clock would break stability.
    let text = String::from_utf8(first).expect("utf8");
    for line in text.lines() {
        assert!(
            !line.contains("wall"),
            "wall time leaked into trace: {line}"
        );
    }
}

#[test]
fn reports_are_unchanged_by_exporters() {
    let _guard = exclusive();

    // Bare run: no trace attached, registry left as-is.
    let bare = {
        let mut store = MemoryStore::new();
        collect_weekly(cfg(), 3, 0, &mut store).expect("collect");
        fig1_from_source(&store).expect("derive")
    };

    // Instrumented run: trace attached, registry cleared first.
    let instrumented = {
        telemetry::global().clear();
        let buf = SharedBuf::default();
        telemetry::attach_trace(Box::new(buf.clone()));
        let mut store = MemoryStore::new();
        collect_weekly(cfg(), 3, 0, &mut store).expect("collect");
        telemetry::detach_trace().expect("flush trace");
        assert!(!buf.contents().is_empty());
        fig1_from_source(&store).expect("derive")
    };

    assert_eq!(
        serde_json::to_string(&bare).unwrap(),
        serde_json::to_string(&instrumented).unwrap(),
        "attaching exporters must not change the derived report"
    );
}

/// Collects a weekly-only bundle and derives the three Weekly-backed
/// experiments in parallel (rayon), with a trace attached throughout.
/// Returns the trace bytes and, when `profiled`, the sim-time profile.
fn traced_bundle_run(profiled: bool) -> (Vec<u8>, Option<telemetry::Profile>) {
    let buf = SharedBuf::default();
    telemetry::attach_trace(Box::new(buf.clone()));
    if profiled {
        telemetry::enable_profile();
    }
    let opts = BundleOptions::new(cfg());
    let bundle = collect_bundle(&opts, &[CampaignKind::Weekly], None).expect("collect");
    let exps: Vec<_> = ["fig1", "tab1", "tab2"]
        .iter()
        .map(|id| experiments::experiment(id).expect("known experiment"))
        .collect();
    let outs = experiments::derive_all(&bundle, &exps, &DeriveOptions::default());
    assert_eq!(outs.len(), 3);
    for out in &outs {
        out.as_ref().expect("derivation succeeds");
    }
    telemetry::detach_trace().expect("flush trace");
    (buf.contents(), telemetry::take_profile())
}

#[test]
fn parallel_derivation_spans_stay_out_of_traces() {
    let _guard = exclusive();
    let (plain_a, no_profile) = traced_bundle_run(false);
    assert!(no_profile.is_none(), "profiler must stay off by default");
    let (profiled, profile) = traced_bundle_run(true);
    let (plain_b, _) = traced_bundle_run(false);

    // Default path: byte-stable, with the profiling-only spans
    // (collect.bundle root, derive.* workers) consuming no span ids.
    assert_eq!(
        plain_a, plain_b,
        "a profiled run in between must not shift later unprofiled traces"
    );
    let plain_text = String::from_utf8(plain_a).expect("utf8");
    assert!(
        !plain_text.contains("collect.bundle") && !plain_text.contains("derive."),
        "profiling-only spans leaked into an unprofiled trace"
    );

    // Profiled path: derive spans are quiet — rayon closes them in
    // scheduler-dependent order, so trace lines would break the
    // byte-stability contract even under --profile.
    let profiled_text = String::from_utf8(profiled).expect("utf8");
    assert!(
        profiled_text.contains("collect.bundle"),
        "profiling should add the root collect span to the trace"
    );
    assert!(
        !profiled_text.contains("derive."),
        "rayon-closed derive spans must never write trace lines"
    );

    // The profile sees each derivation exactly once, folded at the
    // root: a span closed on a rayon worker must not interleave into
    // another thread's open stack, regardless of where rayon ran it.
    let profile = profile.expect("profile collected");
    for id in ["fig1", "tab1", "tab2"] {
        let name = format!("derive.{id}");
        let span = profile
            .spans()
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("profile is missing {name}"));
        assert_eq!(span.count, 1, "{name} derived once");
        assert!(
            profile.folded().contains_key(&name),
            "{name} should fold as a root-level stack"
        );
    }
    for path in profile.folded().keys() {
        if let Some(pos) = path.find("derive.") {
            assert_eq!(pos, 0, "derive span nested under another stack: {path}");
            assert!(
                !path.contains(';'),
                "stack grew under a derive span: {path}"
            );
        }
    }
}

#[test]
fn flight_recorder_does_not_perturb_traces() {
    let _guard = exclusive();
    // Churn probes run through the instrumented retry engine, so this
    // workload exercises the recorder hooks (weekly sweeps do not).
    let traced_churn_run = || {
        let buf = SharedBuf::default();
        telemetry::attach_trace(Box::new(buf.clone()));
        let mut store = MemoryStore::new();
        goingwild::collect_churn(cfg(), 2, &mut store).expect("collect");
        telemetry::detach_trace().expect("flush trace");
        buf.contents()
    };
    let plain = traced_churn_run();
    let recorded = {
        telemetry::recorder::enable(1.0, cfg().seed, 1 << 20);
        let trace = traced_churn_run();
        let stats = telemetry::recorder::stats();
        let records = telemetry::recorder::drain();
        telemetry::recorder::disable();
        assert!(stats.recorded > 0, "recorder captured nothing");
        assert_eq!(records.len() as u64, stats.buffered);
        trace
    };
    assert_eq!(
        plain, recorded,
        "enabling the flight recorder must not change trace bytes"
    );
}

#[test]
fn analysis_report_is_unchanged_by_exporters() {
    let _guard = exclusive();
    let run = |traced: bool| {
        let buf = SharedBuf::default();
        if traced {
            telemetry::attach_trace(Box::new(buf.clone()));
        }
        let mut world = build_world(cfg());
        let report = run_analysis(&mut world, &AnalysisOptions::default());
        if traced {
            telemetry::detach_trace().expect("flush trace");
        }
        serde_json::to_string(&report).unwrap()
    };
    assert_eq!(run(false), run(true));
}
