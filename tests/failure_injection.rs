//! Failure-injection tests: the measurement campaigns must degrade
//! gracefully — not break — when the network drops packets.
//!
//! The enumeration scan sends exactly one probe per address (Sec. 2.2),
//! so with UDP loss probability `p` a round trip survives with
//! probability `(1-p)²` and the observed fleet shrinks accordingly.

use goingwild::{run_analysis, AnalysisOptions, WorldConfig};
use scanner::enumerate;
use worldgen::build_world;

const SEED: u64 = 20151028;

fn lossy_cfg(udp_loss: f64) -> WorldConfig {
    WorldConfig {
        udp_loss,
        ..WorldConfig::tiny(SEED)
    }
}

#[test]
fn enumeration_under_loss_shrinks_by_the_round_trip_survival_rate() {
    let baseline = {
        let mut world = build_world(lossy_cfg(0.0));
        let vantage = world.scanner_ip;
        enumerate(&mut world, vantage, SEED).counts()["ALL"]
    };
    let p = 0.05;
    let lossy = {
        let mut world = build_world(lossy_cfg(p));
        let vantage = world.scanner_ip;
        enumerate(&mut world, vantage, SEED).counts()["ALL"]
    };
    let expected = (1.0 - p) * (1.0 - p);
    let observed = lossy as f64 / baseline as f64;
    // Within ±3 percentage points of the analytic survival rate.
    assert!(
        (observed - expected).abs() < 0.03,
        "observed survival {observed:.4}, expected ≈{expected:.4} \
         ({lossy} of {baseline} hosts)"
    );
}

#[test]
fn heavier_loss_loses_more_hosts_monotonically() {
    let fleet_at = |p: f64| {
        let mut world = build_world(lossy_cfg(p));
        let vantage = world.scanner_ip;
        enumerate(&mut world, vantage, SEED).noerror_ips().len()
    };
    let f0 = fleet_at(0.0);
    let f5 = fleet_at(0.05);
    let f20 = fleet_at(0.20);
    assert!(f0 > f5, "{f0} > {f5}");
    assert!(f5 > f20, "{f5} > {f20}");
    // Even at 20% loss the scan still finds the majority of the fleet.
    assert!(
        f20 as f64 > 0.5 * f0 as f64,
        "20% loss must not halve the fleet: {f20} of {f0}"
    );
}

#[test]
fn analysis_pipeline_survives_packet_loss() {
    // The full Sections 3–4 pipeline on a lossy network: fewer tuples,
    // same phenomena. TCP fetches already retry; DNS tuples that drop
    // simply vanish from the tuple set.
    let mut world = build_world(lossy_cfg(0.05));
    let domains: Vec<String> = vec![
        "facebook.example".into(),
        "youporn.example".into(),
        "paypal.example".into(),
        "qzxkjv.example".into(),
        "gt.gwild.example".into(),
    ];
    let opts = AnalysisOptions {
        domains: Some(domains),
        cluster_cap: 1_000,
        ..Default::default()
    };
    let report = run_analysis(&mut world, &opts);
    assert!(report.fleet_size > 1_000, "fleet {}", report.fleet_size);
    // Ground truth stays overwhelmingly legitimate even under loss.
    let gt = &report.per_category["GroundTr."];
    assert!(gt.legit_share() > 0.85, "gt legit {}", gt.legit_share());
    // Censorship is still visible.
    assert!(
        report.censorship.landing.ip_count() >= 5,
        "landing IPs {}",
        report.censorship.landing.ip_count()
    );
    // China still dominates social-media manipulation.
    let cn = report.fig4.unexpected_share("CN");
    assert!(cn > 0.4, "CN unexpected share {cn}");
}
