//! Failure-injection tests: the measurement campaigns must degrade
//! gracefully — not break — when the network drops packets.
//!
//! The enumeration scan sends exactly one probe per address (Sec. 2.2),
//! so with UDP loss probability `p` a round trip survives with
//! probability `(1-p)²` and the observed fleet shrinks accordingly.

use goingwild::{run_analysis, AnalysisOptions, WorldConfig};
use netsim::{FaultEvent, FaultPlan, SimTime};
use scanner::{enumerate, probe_alive_with_policy, Coverage, ProbePolicy};
use std::net::Ipv4Addr;
use worldgen::build_world;

const SEED: u64 = 20151028;

fn lossy_cfg(udp_loss: f64) -> WorldConfig {
    WorldConfig {
        udp_loss,
        ..WorldConfig::tiny(SEED)
    }
}

#[test]
fn enumeration_under_loss_shrinks_by_the_round_trip_survival_rate() {
    let baseline = {
        let mut world = build_world(lossy_cfg(0.0));
        let vantage = world.scanner_ip;
        enumerate(&mut world, vantage, SEED).counts()["ALL"]
    };
    let p = 0.05;
    let lossy = {
        let mut world = build_world(lossy_cfg(p));
        let vantage = world.scanner_ip;
        enumerate(&mut world, vantage, SEED).counts()["ALL"]
    };
    let expected = (1.0 - p) * (1.0 - p);
    let observed = lossy as f64 / baseline as f64;
    // Within ±3 percentage points of the analytic survival rate.
    assert!(
        (observed - expected).abs() < 0.03,
        "observed survival {observed:.4}, expected ≈{expected:.4} \
         ({lossy} of {baseline} hosts)"
    );
}

#[test]
fn heavier_loss_loses_more_hosts_monotonically() {
    let fleet_at = |p: f64| {
        let mut world = build_world(lossy_cfg(p));
        let vantage = world.scanner_ip;
        enumerate(&mut world, vantage, SEED).noerror_ips().len()
    };
    let f0 = fleet_at(0.0);
    let f5 = fleet_at(0.05);
    let f20 = fleet_at(0.20);
    assert!(f0 > f5, "{f0} > {f5}");
    assert!(f5 > f20, "{f5} > {f20}");
    // Even at 20% loss the scan still finds the majority of the fleet.
    assert!(
        f20 as f64 > 0.5 * f0 as f64,
        "20% loss must not halve the fleet: {f20} of {f0}"
    );
}

#[test]
fn analysis_pipeline_survives_packet_loss() {
    // The full Sections 3–4 pipeline on a lossy network: fewer tuples,
    // same phenomena. TCP fetches already retry; DNS tuples that drop
    // simply vanish from the tuple set.
    let mut world = build_world(lossy_cfg(0.05));
    let domains: Vec<String> = vec![
        "facebook.example".into(),
        "youporn.example".into(),
        "paypal.example".into(),
        "qzxkjv.example".into(),
        "gt.gwild.example".into(),
    ];
    let opts = AnalysisOptions {
        domains: Some(domains),
        cluster_cap: 1_000,
        ..Default::default()
    };
    let report = run_analysis(&mut world, &opts);
    assert!(report.fleet_size > 1_000, "fleet {}", report.fleet_size);
    // Ground truth stays overwhelmingly legitimate even under loss.
    let gt = &report.per_category["GroundTr."];
    assert!(gt.legit_share() > 0.85, "gt legit {}", gt.legit_share());
    // Censorship is still visible.
    assert!(
        report.censorship.landing.ip_count() >= 5,
        "landing IPs {}",
        report.censorship.landing.ip_count()
    );
    // China still dominates social-media manipulation.
    let cn = report.fig4.unexpected_share("CN");
    assert!(cn > 0.4, "CN unexpected share {cn}");
}

/// Runs one churn liveness probe over a cohort with `target` flapping
/// (host down) for the first 4 seconds of the round. Returns the alive
/// set. Everything is deterministic, so the two policies see the exact
/// same world and the exact same flap.
fn churn_round_with_flap(policy: &ProbePolicy) -> (std::collections::HashSet<Ipv4Addr>, Ipv4Addr) {
    let mut world = build_world(lossy_cfg(0.0));
    let vantage = world.scanner_ip;
    let cohort = enumerate(&mut world, vantage, SEED).noerror_ips();
    let target = cohort[cohort.len() / 2];
    // The network clock, not `world.now()`: campaigns pump the network
    // directly and the world's lease clock only catches up lazily.
    let t0 = world.net.now();
    world.net.set_fault_plan(FaultPlan {
        events: vec![FaultEvent::HostDown {
            ip: target,
            from: t0,
            until: SimTime(t0.millis() + 4_000),
        }],
        seed: 1,
        ..FaultPlan::none()
    });
    let (alive, _) = probe_alive_with_policy(&mut world, vantage, &cohort, 0x11, policy);
    (alive, target)
}

#[test]
fn flapping_resolver_during_churn_is_not_misreported_as_gone() {
    // A resolver that flaps exactly while the churn round's single
    // probe is in flight looks like a leaver — the misclassification
    // the retry engine exists to prevent. The native pass sends at the
    // round's start and waits 5 s before giving up, so the first
    // retransmission lands after the 4 s flap has healed.
    let (alive_single, target) = churn_round_with_flap(&ProbePolicy::single());
    assert!(
        !alive_single.contains(&target),
        "without retries the flapping resolver must be missed \
         (otherwise this test exercises nothing)"
    );
    let (alive_retry, target) = churn_round_with_flap(&ProbePolicy::retrying(3));
    assert!(
        alive_retry.contains(&target),
        "a resolver that flaps for 4 s mid-round must be recovered by \
         the retransmission rounds, not reported as churned away"
    );
}

#[test]
fn retrying_campaign_under_iid_loss_recovers_the_lossless_fleet() {
    // The lossless fleet and its one-probe-per-address liveness
    // baseline.
    let (fleet, baseline) = {
        let mut world = build_world(lossy_cfg(0.0));
        let vantage = world.scanner_ip;
        let fleet = enumerate(&mut world, vantage, SEED).noerror_ips();
        let (alive, _) =
            probe_alive_with_policy(&mut world, vantage, &fleet, 0x11, &ProbePolicy::single());
        (fleet, alive.len())
    };
    // The same campaign instant under 5% i.i.d. loss: enumeration
    // advances the network clock on a fixed schedule, so re-running it
    // synchronizes the probe round with the baseline world.
    let alive_at = |policy: &ProbePolicy| {
        let mut world = build_world(lossy_cfg(0.05));
        let vantage = world.scanner_ip;
        let _ = enumerate(&mut world, vantage, SEED);
        probe_alive_with_policy(&mut world, vantage, &fleet, 0x11, policy)
            .0
            .len()
    };
    let single = alive_at(&ProbePolicy::single());
    let retried = alive_at(&ProbePolicy::retrying(3));
    // One probe survives the round trip with ≈0.95² ≈ 90% probability…
    assert!(
        (single as f64) < 0.97 * baseline as f64,
        "single-probe under 5% loss should fall well short of the \
         lossless baseline: {single} vs {baseline}"
    );
    // …while three backed-off attempts recover ≥99% of the fleet.
    assert!(
        (retried as f64) >= 0.99 * baseline as f64,
        "three attempts under 5% loss must recover ≥99% of the \
         lossless fleet: {retried} vs {baseline}"
    );
}

#[test]
fn coverage_fraction_reflects_gave_up_but_not_unreachable() {
    let mut cov = Coverage {
        attempted: 100,
        answered: 90,
        gave_up: 5,
        unreachable: 5,
        retries: 7,
        space: false,
    };
    // 90 answered of 95 reachable: unreachable hosts (nobody there to
    // answer) don't count against the scanner.
    assert!((cov.fraction() - 90.0 / 95.0).abs() < 1e-9);
    cov.absorb(&Coverage::space(10, 10));
    assert_eq!(cov.attempted, 110);
    assert_eq!(cov.answered, 100);
    assert!(cov.space, "absorbing a space row marks the aggregate");
}
