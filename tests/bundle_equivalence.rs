//! Collect-once/derive-many equivalence, end to end.
//!
//! The acceptance bar for the campaign bundle: `repro --exp all` must
//! print byte-identical reports to each single-experiment invocation,
//! and the full bundle must build exactly one world and run every
//! campaign at most once. Asserted here at `WorldConfig::tiny` through
//! the same library entry points the binary uses: derive every
//! registry experiment from one full bundle, re-collect each distinct
//! requirement subset alone, and compare the rendered outputs.

use goingwild::experiments::{self, DeriveOptions, Experiment};
use goingwild::{collect_bundle, BundleOptions, CampaignKind, WorldConfig};
use netsim::FaultPlan;
use scanner::ProbePolicy;
use std::collections::BTreeMap;

#[test]
fn subset_derivations_match_full_bundle_and_campaigns_run_once() {
    let cfg = WorldConfig {
        weeks: 2,
        ..WorldConfig::tiny(20151028)
    };
    let opts = BundleOptions {
        snoop_sample: 60,
        snoop_rounds: 4,
        ..BundleOptions::new(cfg.clone())
    };
    let dopts = DeriveOptions {
        cfg: cfg.clone(),
        ..DeriveOptions::default()
    };

    // The full bundle: one world build, each campaign at most once.
    telemetry::global().clear();
    let full = collect_bundle(&opts, &CampaignKind::ALL, None).expect("full bundle");
    assert_eq!(
        telemetry::counter("collect.world_builds").get(),
        1,
        "the whole bundle must share one world build"
    );
    for kind in CampaignKind::ALL {
        let runs = telemetry::global()
            .counter_with("collect.campaign_runs", &[("campaign", kind.name())])
            .get();
        assert_eq!(runs, 1, "campaign `{}` must run exactly once", kind.name());
    }

    // The ablations are self-contained (empty requirements), so subset
    // identity is vacuous for them — and they are the one experiment
    // that builds worlds inside its derivation.
    let exps: Vec<&'static Experiment> = experiments::REGISTRY
        .iter()
        .filter(|e| !e.requires.is_empty())
        .collect();
    let full_outputs = experiments::derive_all(&full, &exps, &dopts);

    // Re-collect each distinct requirement set alone and compare every
    // member experiment's rendered text byte for byte.
    let mut groups: BTreeMap<Vec<CampaignKind>, Vec<usize>> = BTreeMap::new();
    for (i, e) in exps.iter().enumerate() {
        groups.entry(e.requires.to_vec()).or_default().push(i);
    }
    for (kinds, members) in groups {
        let mini = collect_bundle(&opts, &kinds, None).expect("subset bundle");
        for i in members {
            let exp = exps[i];
            let from_full = &full_outputs[i].as_ref().expect("derive from full").text;
            let from_mini = (exp.derive)(&mini, &dopts)
                .expect("derive from subset")
                .text;
            assert_eq!(
                *from_full, from_mini,
                "experiment `{}` must not depend on which other campaigns shared the bundle",
                exp.id
            );
        }
    }
}

/// The chaos-ready machinery must be invisible when disarmed: a bundle
/// collected with an explicitly installed no-op fault plan, the default
/// single-attempt probe policy, and coverage accounting on derives
/// byte-identical reports to the plain default-options bundle.
#[test]
fn noop_fault_plan_and_single_probe_policy_are_byte_identical() {
    let cfg = WorldConfig {
        weeks: 2,
        ..WorldConfig::tiny(20151028)
    };
    let base = BundleOptions {
        snoop_sample: 60,
        snoop_rounds: 4,
        ..BundleOptions::new(cfg.clone())
    };
    let disarmed = BundleOptions {
        faults: Some(FaultPlan::none()),
        probe: ProbePolicy::single(),
        coverage: true,
        ..base.clone()
    };
    let dopts = DeriveOptions {
        cfg: cfg.clone(),
        ..DeriveOptions::default()
    };
    let plain = collect_bundle(&base, &CampaignKind::ALL, None).expect("plain bundle");
    let chaos_ready = collect_bundle(&disarmed, &CampaignKind::ALL, None).expect("disarmed bundle");
    let exps: Vec<&'static Experiment> = experiments::REGISTRY
        .iter()
        .filter(|e| !e.requires.is_empty())
        .collect();
    let a = experiments::derive_all(&plain, &exps, &dopts);
    let b = experiments::derive_all(&chaos_ready, &exps, &dopts);
    for ((exp, ra), rb) in exps.iter().zip(a).zip(b) {
        assert_eq!(
            ra.expect("derive plain").text,
            rb.expect("derive disarmed").text,
            "experiment `{}` must be unaffected by a disarmed fault/retry engine",
            exp.id
        );
    }
    // And every campaign earned a coverage row during collection.
    for kind in CampaignKind::ALL {
        let cov = chaos_ready
            .coverage()
            .get(&kind)
            .unwrap_or_else(|| panic!("campaign `{}` must report coverage", kind.name()));
        assert!(
            cov.attempted > 0,
            "campaign `{}` coverage must count attempts",
            kind.name()
        );
        // On the pristine tiny network nothing times out wholesale.
        assert!(
            cov.fraction() > 0.5,
            "campaign `{}` fraction {} suspiciously low on a pristine network",
            kind.name(),
            cov.fraction()
        );
    }
}
