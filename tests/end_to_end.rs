//! Full-pipeline integration test: build a tiny world, run the complete
//! Sections 3–4 analysis over a representative domain subset, and check
//! that the recovered phenomena match the generated ground truth in
//! *shape* (who wins, by roughly what factor).

use goingwild::{run_analysis, AnalysisOptions, WorldConfig};
use worldgen::build_world;

fn domain_subset() -> Vec<String> {
    [
        // Social media (CN/IR censorship, Figure 4).
        "facebook.example",
        "twitter.example",
        "youtube.example",
        // Adult + gambling + dating (landing-page censorship).
        "youporn.example",
        "adultfinder.example",
        "bet-at-home.example",
        "okcupid.example",
        // Banking (phishing targets).
        "paypal.example",
        "bancaditalia.example",
        // Ads (injection case study).
        "adnet-one.example",
        // Mail.
        "smtp.gmail.example",
        // NX (monetization).
        "qzxkjv.example",
        "amason.example",
        // Malware (blocking + parking) and fake updates.
        "irc.zief.example",
        "cn-dropzone.example",
        "update.adobe.example",
        // Filesharing (torproject parking).
        "torproject.example",
        // Ground truth.
        "gt.gwild.example",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn full_pipeline_recovers_the_paper_phenomena() {
    let mut world = build_world(WorldConfig::tiny(20151028));
    let opts = AnalysisOptions {
        domains: Some(domain_subset()),
        cluster_cap: 1_500,
        ..Default::default()
    };
    let report = run_analysis(&mut world, &opts);

    // ---- Fleet ----
    assert!(report.fleet_size > 2_000, "fleet {}", report.fleet_size);

    // ---- Prefiltering shape (Sec. 4.1) ----
    // Banking: overwhelmingly legitimate, small unexpected tail.
    let banking = &report.per_category["Banking"];
    assert!(
        banking.legit_share() > 0.80,
        "banking legit {}",
        banking.legit_share()
    );
    assert!(
        banking.unexpected_share() < 0.15,
        "banking unexpected {}",
        banking.unexpected_share()
    );
    // Adult: censorship pushes the unexpected share far above banking's.
    let adult = &report.per_category["Adult"];
    assert!(
        adult.unexpected_share() > banking.unexpected_share() * 2.0,
        "adult {} vs banking {}",
        adult.unexpected_share(),
        banking.unexpected_share()
    );
    // NX: monetizers answer where NXDOMAIN is expected (paper: 13.7%).
    let nx = &report.per_category["NX"];
    assert!(
        nx.unexpected_share() > 0.04,
        "nx unexpected {}",
        nx.unexpected_share()
    );
    // Ground truth: never censored, never monetized.
    let gt = &report.per_category["GroundTr."];
    assert!(gt.legit_share() > 0.85, "gt legit {}", gt.legit_share());

    // ---- Figure 4: China dominates social-media manipulation ----
    let cn = report.fig4.unexpected_share("CN");
    assert!(cn > 0.45, "CN unexpected share {cn} (paper: 83.6%)");
    let ir = report.fig4.unexpected_share("IR");
    assert!(ir > 0.02, "IR unexpected share {ir} (paper: 12.9%)");
    assert!(cn > ir, "CN must dominate IR");
    // The ALL distribution is far less concentrated than the
    // unexpected one (Figure 4-a vs 4-b).
    let total_all: u64 = report.fig4.all.values().sum();
    let cn_all = *report.fig4.all.get("CN").unwrap_or(&0) as f64 / total_all.max(1) as f64;
    assert!(cn_all < 0.25, "CN all-responses share {cn_all}");

    // ---- Censorship ----
    assert!(
        report.censorship.landing.ip_count() >= 10,
        "landing IPs {}",
        report.censorship.landing.ip_count()
    );
    assert!(
        report.censorship.landing.country_count() >= 4,
        "landing countries {}",
        report.censorship.landing.country_count()
    );
    // GFW double responses (forged first, legit later) exist.
    assert!(
        !report.censorship.doubles.forged_then_legit.is_empty(),
        "expected GFW-escape double responses"
    );
    // Compliance: Turkey censors youporn at a high rate; the US does not.
    let tr = geodb::Country::new("TR");
    let us = geodb::Country::new("US");
    let tr_rate = report
        .censorship
        .compliance
        .rate(tr, &["youporn.example"])
        .unwrap_or(0.0);
    assert!(
        tr_rate > 0.5,
        "TR youporn censorship rate {tr_rate} (paper: ~90%)"
    );
    let us_rate = report
        .censorship
        .compliance
        .rate(us, &["youporn.example"])
        .unwrap_or(0.0);
    assert!(us_rate < 0.2, "US youporn censorship rate {us_rate}");

    // ---- Table 5 shape ----
    let row = |cat: &str| {
        report
            .table5
            .iter()
            .find(|r| r.category == cat)
            .unwrap_or_else(|| panic!("missing table5 row {cat}"))
    };
    let adult_row = row("Adult");
    let (cens_avg, cens_max) = adult_row.shares["Censorship"];
    assert!(
        cens_avg > 25.0,
        "adult censorship avg {cens_avg}% (paper: 88.6%)"
    );
    assert!(
        cens_max > 40.0,
        "adult censorship max {cens_max}% (paper: 91.3%)"
    );
    let banking_row = row("Banking");
    let (bank_err, _) = banking_row.shares["HTTP Error"];
    let (bank_cens, _) = banking_row.shares["Censorship"];
    assert!(
        bank_err > bank_cens,
        "banking: errors ({bank_err}) should dominate censorship ({bank_cens})"
    );

    // ---- Case studies ----
    let cases = &report.cases;
    assert!(
        !cases.proxies.http_only_proxy_ips.is_empty(),
        "HTTP-only proxies must be found"
    );
    assert!(
        cases.proxies.resolvers_via_http_only.len() >= cases.proxies.resolvers_via_tls.len(),
        "HTTP-only proxy population dominates (paper: 10,179 vs 99)"
    );
    assert!(!cases.phishing.is_empty(), "phishing kits must be found");
    assert!(
        cases
            .phishing
            .iter()
            .any(|f| f.domain == "paypal.example"
                && f.evidence.iter().any(|e| e.contains("image-kit"))),
        "the 46-image PayPal kit must be detected: {:?}",
        cases.phishing
    );
    assert!(
        !cases.mail.listening_ips.is_empty(),
        "mail interception must be found"
    );
    assert!(
        !cases.ads.by_class.is_empty(),
        "ad manipulation must be found for adnet-one.example"
    );
    assert!(
        !cases.malware.dropper_ips.is_empty(),
        "fake-update droppers must be found"
    );

    // ---- Acquisition coverage ----
    assert!(
        report.http_share > 0.5,
        "HTTP share {} (paper: 88.9%)",
        report.http_share
    );
    assert!(report.clusters >= 5, "clusters {}", report.clusters);
}

#[test]
fn analysis_is_deterministic() {
    let domains: Vec<String> = vec![
        "facebook.example".into(),
        "paypal.example".into(),
        "qzxkjv.example".into(),
        "gt.gwild.example".into(),
    ];
    let run = || {
        let mut world = build_world(WorldConfig::tiny(77));
        let opts = AnalysisOptions {
            domains: Some(domains.clone()),
            ..Default::default()
        };
        let r = run_analysis(&mut world, &opts);
        (
            r.fleet_size,
            r.per_category.clone(),
            r.fig4.unexpected.clone(),
            r.clusters,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
    let cats_a: Vec<_> =
        a.1.iter()
            .map(|(k, v)| (k.clone(), v.responses, v.unexpected))
            .collect();
    let cats_b: Vec<_> =
        b.1.iter()
            .map(|(k, v)| (k.clone(), v.responses, v.unexpected))
            .collect();
    assert_eq!(cats_a, cats_b);
}
