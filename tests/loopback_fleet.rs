//! Real-socket integration: a mixed fleet of resolver behaviours served
//! over actual UDP on loopback, scanned with the paced tokio driver.
//!
//! This is the "not simulation-bound" proof for the whole stack:
//! resolver behaviours, wire codec, scanner, and rate limiting all run
//! on a real network path.

use resolversim::tokioserve::spawn_fleet;
use resolversim::{
    CacheProfile, CensorPolicy, CensorRule, ChaosPolicy, DeviceProfile, DnsUniverse,
    DomainCategory, DomainKind, DomainRecord, ResolverBehavior, ResolverHost, SoftwareProfile,
    TldCacheSim,
};
use scanner::tokio_scan::{scan_targets_paced, Probe};
use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::Arc;
use std::time::Duration;

fn universe() -> Arc<DnsUniverse> {
    let mut u = DnsUniverse::new();
    u.add_domain(DomainRecord {
        name: "probe.example".into(),
        category: DomainCategory::Misc,
        kind: DomainKind::Fixed(vec![Ipv4Addr::new(198, 51, 100, 10)]),
        ttl: 60,
        is_mail_host: false,
    });
    u.add_domain(DomainRecord {
        name: "blocked.example".into(),
        category: DomainCategory::Adult,
        kind: DomainKind::Fixed(vec![Ipv4Addr::new(198, 51, 100, 20)]),
        ttl: 60,
        is_mail_host: false,
    });
    Arc::new(u)
}

fn resolver(behavior: ResolverBehavior, version: &str) -> ResolverHost {
    ResolverHost::new(
        universe(),
        behavior,
        SoftwareProfile::new("BIND", version, ChaosPolicy::Genuine),
        DeviceProfile::closed(),
        TldCacheSim::new(CacheProfile::EmptyAnswer),
        geodb::Rir::Ripe,
        3,
    )
}

fn censor() -> ResolverBehavior {
    ResolverBehavior::Censor {
        policy: Arc::new(CensorPolicy {
            country: geodb::Country::new("TR"),
            rules: vec![CensorRule {
                categories: vec![DomainCategory::Adult],
                domains: vec![],
                landing_ips: vec![Ipv4Addr::new(203, 0, 113, 80)],
            }],
            compliance: 1.0,
        }),
    }
}

#[tokio::test]
async fn mixed_fleet_over_real_sockets() {
    // 12 resolvers: 6 honest, 3 censoring, 2 refusing, 1 static.
    let mut hosts = Vec::new();
    for _ in 0..6 {
        hosts.push(resolver(ResolverBehavior::Honest, "9.8.2"));
    }
    for _ in 0..3 {
        hosts.push(resolver(censor(), "9.9.5"));
    }
    for _ in 0..2 {
        hosts.push(resolver(ResolverBehavior::RefusedAll, "9.3.6"));
    }
    hosts.push(resolver(
        ResolverBehavior::StaticIp {
            ip: Ipv4Addr::new(203, 0, 113, 99),
        },
        "9.7.3",
    ));

    let fleet = spawn_fleet(hosts, SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))
        .await
        .unwrap();
    let targets: Vec<SocketAddrV4> = fleet.iter().map(|s| s.local_addr).collect();

    // Paced scan of an innocuous domain: honest + censor + static answer
    // NOERROR; refusers answer REFUSED.
    let name = dnswire::Name::parse("probe.example").unwrap();
    let outcomes = scan_targets_paced(
        &targets,
        Probe::A(name),
        8,
        Duration::from_secs(3),
        Some(500),
    )
    .await
    .unwrap();
    assert_eq!(outcomes.len(), 12, "every resolver answers something");
    let noerror = outcomes
        .values()
        .filter(|o| o.rcode == dnswire::Rcode::NoError)
        .count();
    let refused = outcomes
        .values()
        .filter(|o| o.rcode == dnswire::Rcode::Refused)
        .count();
    assert_eq!(noerror, 10);
    assert_eq!(refused, 2);

    // Scan the censored domain: the censors return the landing page,
    // the honest ones the real address.
    let name = dnswire::Name::parse("blocked.example").unwrap();
    let outcomes = scan_targets_paced(
        &targets,
        Probe::A(name),
        8,
        Duration::from_secs(3),
        Some(500),
    )
    .await
    .unwrap();
    let legit = Ipv4Addr::new(198, 51, 100, 20);
    let landing = Ipv4Addr::new(203, 0, 113, 80);
    let honest_answers = outcomes
        .values()
        .filter(|o| o.answers.contains(&legit))
        .count();
    let censored_answers = outcomes
        .values()
        .filter(|o| o.answers.contains(&landing))
        .count();
    assert_eq!(honest_answers, 6);
    assert_eq!(censored_answers, 3);

    for s in fleet {
        s.shutdown().await;
    }
}
