//! Integration tests for the measurement-experiment drivers (Sec. 2):
//! weekly enumeration, country/RIR flux, CHAOS fingerprinting, device
//! fingerprinting, churn tracking, cache-snooping utilization, and the
//! dual-vantage verification scan — all at tiny scale, asserting the
//! paper's *shapes*, not absolute numbers.

#![allow(deprecated)]

use goingwild::experiments::{
    fig1_weekly_counts, fig2_churn, table1_country_flux, table2_rir_flux, table3_software,
    table4_devices, utilization, verification,
};
use goingwild::WorldConfig;
use scanner::enumerate;
use worldgen::build_world;

const SEED: u64 = 20151028;

fn short_cfg(weeks: u32) -> WorldConfig {
    WorldConfig {
        weeks,
        ..WorldConfig::tiny(SEED)
    }
}

#[test]
fn fig1_population_declines_and_cross_checks() {
    let fig1 = fig1_weekly_counts(short_cfg(9), 9);
    assert_eq!(fig1.weeks.len(), 9);
    let first = &fig1.weeks[0];
    let last = fig1.weeks.last().unwrap();
    // Paper: the NOERROR population shrinks over the study year
    // (26.8M → 17.8M over 55 weeks; any prefix must already trend down).
    assert!(
        last.noerror < first.noerror,
        "population must decline: {} → {}",
        first.noerror,
        last.noerror
    );
    // NOERROR dominates both error classes at every scan.
    for w in &fig1.weeks {
        assert!(w.noerror > w.refused, "week {}: noerror vs refused", w.week);
        assert!(
            w.noerror > w.servfail,
            "week {}: noerror vs servfail",
            w.week
        );
        assert_eq!(w.all, w.noerror + w.refused + w.servfail);
    }
    // DNS proxies / multi-homed hosts answer from a different source IP
    // in every scan (paper Sec. 2.5: ~2.5% of responders).
    for w in &fig1.weeks {
        let share = w.proxy_responders as f64 / w.all.max(1) as f64;
        assert!(
            (0.005..0.06).contains(&share),
            "week {}: proxy-responder share {share:.4}",
            w.week
        );
    }
    // ORP-style cross-check: scan counts track ground truth (paper:
    // within 2%; tiny scale adds small-sample noise — the full-scale
    // repro run measures 0.81%).
    assert!(
        fig1.max_cross_check_error() < 0.05,
        "cross-check error {:.4}",
        fig1.max_cross_check_error()
    );
}

#[test]
fn table1_top_countries_match_the_paper_ranking() {
    let fig1 = fig1_weekly_counts(short_cfg(3), 3);
    let rows = table1_country_flux(&fig1, 10);
    assert_eq!(rows.len(), 10);
    // Paper Table 1: US and CN are the two largest populations.
    let top2: Vec<&str> = rows[..2].iter().map(|r| r.key.as_str()).collect();
    assert!(top2.contains(&"US"), "top-2 {top2:?} must contain US");
    assert!(top2.contains(&"CN"), "top-2 {top2:?} must contain CN");
    // Rows are sorted descending by first-scan count.
    for pair in rows.windows(2) {
        assert!(pair[0].first >= pair[1].first);
    }
}

#[test]
fn table2_every_rir_shrinks_and_arin_is_most_stable() {
    let fig1 = fig1_weekly_counts(short_cfg(9), 9);
    let rows = table2_rir_flux(&fig1);
    assert!(rows.len() >= 4, "expected >=4 RIR rows, got {}", rows.len());
    // Paper Table 2: every region loses resolvers over the year.
    for r in &rows {
        assert!(r.delta() <= 0, "{} grew: {} → {}", r.key, r.first, r.last);
    }
    // ARIN (−12.1%) shrinks much less than RIPE (−33.2%) and
    // LACNIC (−35.1%).
    let pct = |key: &str| {
        rows.iter()
            .find(|r| r.key == key)
            .map(|r| r.pct())
            .unwrap_or_else(|| panic!("missing RIR row {key}"))
    };
    assert!(
        pct("ARIN") > pct("RIPE"),
        "ARIN {:.1}% should be more stable than RIPE {:.1}%",
        pct("ARIN"),
        pct("RIPE")
    );
    assert!(
        pct("ARIN") > pct("LACNIC"),
        "ARIN {:.1}% should be more stable than LACNIC {:.1}%",
        pct("ARIN"),
        pct("LACNIC")
    );
}

#[test]
fn table3_chaos_mix_is_bind_dominated() {
    let mut world = build_world(WorldConfig::tiny(SEED));
    let vantage = world.scanner_ip;
    let fleet = enumerate(&mut world, vantage, SEED).noerror_ips();
    let t3 = table3_software(&mut world, &fleet, SEED);
    assert!(t3.responding > 0);
    // Paper Sec. 2.3: a majority of version-revealing resolvers run BIND.
    assert!(
        t3.bind_share() > 0.5,
        "BIND share {:.3} (paper: dominant)",
        t3.bind_share()
    );
    // The genuine / custom / empty / error split covers every responder.
    assert_eq!(t3.responding, t3.genuine + t3.custom + t3.empty + t3.errors);
    // dnsmasq (forwarder CPE) appears among the top versions.
    let tops = t3.top_versions(10);
    assert!(
        tops.iter()
            .any(|(k, _)| k.to_ascii_lowercase().contains("dnsmasq")),
        "dnsmasq expected among top versions: {tops:?}"
    );
}

#[test]
fn table4_device_mix_shape() {
    let mut world = build_world(WorldConfig::tiny(SEED));
    let vantage = world.scanner_ip;
    let fleet = enumerate(&mut world, vantage, SEED).noerror_ips();
    let t4 = table4_devices(&mut world, &fleet);
    assert!(t4.fleet > 0);
    // Paper Sec. 2.4: only 26.3% of resolvers expose TCP services at all.
    let tcp_share = t4.tcp_responsive as f64 / t4.fleet as f64;
    assert!(
        (0.15..0.40).contains(&tcp_share),
        "TCP-responsive share {tcp_share:.3} (paper: 26.3%)"
    );
    // Routers dominate the recognizable hardware (paper: 54.7% of
    // fingerprinted devices).
    let share = |k: &str| t4.hardware.get(k).copied().unwrap_or(0.0);
    let router = share("Router");
    for other in ["Camera", "DVR", "NAS", "Firewall", "DSLAM"] {
        assert!(
            router > share(other),
            "Router ({router:.1}%) must dominate {other} ({:.1}%)",
            share(other)
        );
    }
}

#[test]
fn fig2_churn_curve_shape() {
    let fig2 = fig2_churn(short_cfg(12), 12);
    let churn = &fig2.churn;
    assert!(churn.cohort > 0);
    // Paper Fig. 2: ~43.6% of the cohort is gone after a single day.
    let day1 = churn.day1_survivors as f64 / churn.cohort as f64;
    assert!(
        (0.35..0.75).contains(&day1),
        "day-1 survival {day1:.3} (paper: 56.4%)"
    );
    // Survival is monotone non-increasing week over week.
    for pair in churn.survivors.windows(2) {
        assert!(pair[0] >= pair[1], "survival must not increase: {pair:?}");
    }
    // Long-run survival collapses to a small static core.
    let last = *churn.survivors.last().unwrap() as f64 / churn.cohort as f64;
    assert!(last < day1, "week-12 survival {last:.3} < day-1 {day1:.3}");
    // Day-one leavers overwhelmingly carry dynamic-looking rDNS
    // (paper: 78% of those with records).
    if churn.day1_leavers_with_rdns > 0 {
        let dyn_share =
            churn.day1_leavers_dynamic_rdns as f64 / churn.day1_leavers_with_rdns as f64;
        assert!(dyn_share > 0.5, "dynamic rDNS share {dyn_share:.3}");
    }
}

#[test]
fn utilization_recovers_the_in_use_majority() {
    let mut world = build_world(WorldConfig::tiny(SEED));
    let vantage = world.scanner_ip;
    let fleet = enumerate(&mut world, vantage, SEED).noerror_ips();
    let util = utilization(&mut world, &fleet, 400, 36);
    assert!(util.probed > 0);
    // Paper Sec. 2.6: 61.6% of snooped resolvers are actively used.
    assert!(
        util.in_use_share() > 40.0,
        "in-use share {:.1}% (paper: 61.6%)",
        util.in_use_share()
    );
    // Shares are percentages over the probed set.
    let total: f64 = util.shares.values().sum();
    assert!(
        (99.0..101.0).contains(&total),
        "shares must sum to 100%, got {total:.2}"
    );
    // Popularity estimates exist for the frequently-refreshing majority.
    assert!(util.popularity_median.is_some());
}

#[test]
fn verification_scan_misses_almost_nothing() {
    let mut world = build_world(WorldConfig::tiny(SEED));
    let v = verification(&mut world, SEED);
    assert!(v.primary_noerror > 0);
    // Paper Sec. 2.2: the secondary vantage finds <1% additional hosts
    // (scanner-specific blacklisting); tiny-scale tolerance is wider.
    let miss = v.missed_noerror as f64 / v.primary_noerror as f64;
    assert!(miss < 0.05, "dual-vantage miss rate {miss:.4} (paper: <1%)");
}

#[test]
fn scan_tracks_each_planned_country_population() {
    // Regression guard for the opt-out blacklist: no country may lose a
    // measurable share of its planned population to scan-invisible
    // hosts (this once cost Mexico 18% of its resolvers and pushed its
    // Table 1 delta from −14% to −1%).
    let cfg = WorldConfig::tiny(SEED);
    let scale = cfg.scale;
    let fig1 = fig1_weekly_counts(cfg, 1);
    for plan in worldgen::COUNTRY_PLANS {
        let planted = (plan.start as f64 * scale).round();
        if planted < 40.0 {
            continue; // too small for a stable ratio at tiny scale
        }
        let seen = fig1.first_by_country.get(plan.code).copied().unwrap_or(0) as f64;
        assert!(
            seen > 0.90 * planted,
            "{}: scan sees {seen} of ~{planted} planted resolvers",
            plan.code
        );
    }
}
