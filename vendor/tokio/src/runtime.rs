//! The runtime handle: a thin front over the thread-local poll loop.

use std::future::Future;

/// A single-threaded runtime. Construction cannot fail; the `Result`
/// mirrors real tokio's signature.
#[derive(Debug, Default)]
pub struct Runtime {
    _priv: (),
}

impl Runtime {
    /// Creates a runtime.
    pub fn new() -> std::io::Result<Runtime> {
        Ok(Runtime { _priv: () })
    }

    /// Drives `future` (and everything it spawns) to completion.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        crate::block_on_impl(future)
    }
}
