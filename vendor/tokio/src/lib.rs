//! Minimal stand-in for `tokio`.
//!
//! A single-threaded, poll-loop async runtime: `block_on` drives the main
//! future and every `spawn`ed task round-robin with a no-op waker,
//! sleeping briefly between idle rounds. UDP sockets are nonblocking
//! `std::net` sockets whose `WouldBlock` maps to `Poll::Pending`. This is
//! enough to run the workspace's loopback scan driver and resolver
//! servers with real packets; it makes no fairness or performance claims
//! beyond that.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, Waker};

pub use tokio_macros::{main, test};

pub mod runtime;

/// Spawns a task onto the current thread's running runtime.
///
/// Unlike real tokio this does not require `Send`: the runtime is
/// single-threaded. Panics if called outside `block_on`.
pub fn spawn<F>(future: F) -> task::JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let slot = std::sync::Arc::new(std::sync::Mutex::new(None));
    let writer = slot.clone();
    let wrapped = Box::pin(async move {
        let value = future.await;
        *writer.lock().expect("join slot") = Some(value);
    });
    EXECUTOR.with(|queue| {
        queue
            .borrow_mut()
            .as_mut()
            .expect("tokio::spawn called outside a runtime")
            .push(wrapped);
    });
    task::JoinHandle { slot }
}

type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;

thread_local! {
    /// Incoming-task queue; `Some` while a `block_on` is active.
    static EXECUTOR: RefCell<Option<Vec<TaskFuture>>> = const { RefCell::new(None) };
}

fn block_on_impl<F: Future>(future: F) -> F::Output {
    EXECUTOR.with(|queue| {
        let prev = queue.borrow_mut().replace(Vec::new());
        assert!(prev.is_none(), "nested block_on is not supported");
    });
    let waker = Waker::noop();
    let mut cx = Context::from_waker(waker);
    let mut main = Box::pin(future);
    let mut tasks: Vec<TaskFuture> = Vec::new();
    loop {
        let outcome = main.as_mut().poll(&mut cx);
        // Adopt tasks spawned by the main future before driving them.
        EXECUTOR.with(|queue| {
            if let Some(incoming) = queue.borrow_mut().as_mut() {
                tasks.append(incoming);
            }
        });
        if let Poll::Ready(value) = outcome {
            // Background tasks die with the runtime, as in real tokio.
            EXECUTOR.with(|queue| *queue.borrow_mut() = None);
            return value;
        }
        let mut i = 0;
        while i < tasks.len() {
            if tasks[i].as_mut().poll(&mut cx).is_ready() {
                drop(tasks.swap_remove(i));
            } else {
                i += 1;
            }
            EXECUTOR.with(|queue| {
                if let Some(incoming) = queue.borrow_mut().as_mut() {
                    tasks.append(incoming);
                }
            });
        }
        // Nothing was ready; yield the CPU briefly before re-polling.
        std::thread::sleep(std::time::Duration::from_micros(100));
    }
}

/// Task handles.
pub mod task {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll};

    /// Error returned when a task cannot be joined. The in-tree runtime
    /// never cancels tasks, so this is never actually produced.
    #[derive(Debug)]
    pub struct JoinError(());

    impl std::fmt::Display for JoinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("task failed")
        }
    }

    /// Awaitable handle to a spawned task's output.
    pub struct JoinHandle<T> {
        pub(crate) slot: Arc<Mutex<Option<T>>>,
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;
        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            match self.slot.lock().expect("join slot").take() {
                Some(v) => Poll::Ready(Ok(v)),
                None => Poll::Pending,
            }
        }
    }
}

/// Nonblocking UDP and TCP networking.
pub mod net {
    use std::io;
    use std::io::{Read as _, Write as _};
    use std::net::SocketAddr;
    use std::task::Poll;

    /// An async TCP listener over a nonblocking `std::net::TcpListener`.
    #[derive(Debug)]
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Binds to `addr` and starts listening.
        pub async fn bind<A: std::net::ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
            let inner = std::net::TcpListener::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpListener { inner })
        }

        /// The locally bound address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Accepts one inbound connection, waiting until one arrives.
        pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            std::future::poll_fn(|_cx| match self.inner.accept() {
                Ok((stream, addr)) => {
                    if let Err(e) = stream.set_nonblocking(true) {
                        return Poll::Ready(Err(e));
                    }
                    Poll::Ready(Ok((TcpStream { inner: stream }, addr)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
                Err(e) => Poll::Ready(Err(e)),
            })
            .await
        }
    }

    /// An async TCP stream over a nonblocking `std::net::TcpStream`.
    #[derive(Debug)]
    pub struct TcpStream {
        inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Connects to `addr`. The handshake itself runs blocking (it
        /// is instantaneous on loopback, the runtime's only use case);
        /// the returned stream is nonblocking.
        pub async fn connect<A: std::net::ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
            let inner = std::net::TcpStream::connect(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpStream { inner })
        }

        /// The peer's address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        /// The local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Reads some bytes, waiting until at least one is available.
        /// `Ok(0)` means the peer closed its half.
        pub async fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            std::future::poll_fn(|_cx| match self.inner.read(buf) {
                Ok(n) => Poll::Ready(Ok(n)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => Poll::Pending,
                Err(e) => Poll::Ready(Err(e)),
            })
            .await
        }

        /// Writes the whole buffer.
        pub async fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
            let mut written = 0usize;
            std::future::poll_fn(|_cx| {
                while written < buf.len() {
                    match self.inner.write(&buf[written..]) {
                        Ok(0) => {
                            return Poll::Ready(Err(io::Error::new(
                                io::ErrorKind::WriteZero,
                                "peer closed",
                            )))
                        }
                        Ok(n) => written += n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Poll::Pending,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Poll::Ready(Err(e)),
                    }
                }
                Poll::Ready(Ok(()))
            })
            .await
        }

        /// Shuts down the write half, flushing buffered bytes.
        pub fn shutdown_write(&mut self) -> io::Result<()> {
            self.inner.shutdown(std::net::Shutdown::Write)
        }
    }

    /// An async UDP socket over a nonblocking `std::net::UdpSocket`.
    #[derive(Debug)]
    pub struct UdpSocket {
        inner: std::net::UdpSocket,
    }

    impl UdpSocket {
        /// Binds to `addr` (any `std::net::ToSocketAddrs` form).
        pub async fn bind<A: std::net::ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
            let inner = std::net::UdpSocket::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(UdpSocket { inner })
        }

        /// The locally bound address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Receives one datagram, waiting until one arrives.
        pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
            std::future::poll_fn(|_cx| match self.inner.recv_from(buf) {
                Ok(v) => Poll::Ready(Ok(v)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
                Err(e) => Poll::Ready(Err(e)),
            })
            .await
        }

        /// Sends one datagram to `target`.
        pub async fn send_to<A: std::net::ToSocketAddrs>(
            &self,
            buf: &[u8],
            target: A,
        ) -> io::Result<usize> {
            let addr = target
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
            std::future::poll_fn(|_cx| match self.inner.send_to(buf, addr) {
                Ok(n) => Poll::Ready(Ok(n)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
                Err(e) => Poll::Ready(Err(e)),
            })
            .await
        }
    }
}

/// Synchronization primitives.
pub mod sync {
    /// One-shot, single-value channel.
    pub mod oneshot {
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::{Arc, Mutex};
        use std::task::{Context, Poll};

        struct Shared<T> {
            value: Option<T>,
            sender_alive: bool,
        }

        /// Sending half; consumed by [`Sender::send`].
        pub struct Sender<T> {
            shared: Arc<Mutex<Shared<T>>>,
        }

        /// Receiving half; awaits the value.
        pub struct Receiver<T> {
            shared: Arc<Mutex<Shared<T>>>,
        }

        /// Error awaited out of a channel whose sender dropped silently.
        #[derive(Debug, PartialEq, Eq)]
        pub struct RecvError(());

        impl std::fmt::Display for RecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("channel closed")
            }
        }

        /// Creates a connected sender/receiver pair.
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let shared = Arc::new(Mutex::new(Shared {
                value: None,
                sender_alive: true,
            }));
            (
                Sender {
                    shared: shared.clone(),
                },
                Receiver { shared },
            )
        }

        impl<T> Sender<T> {
            /// Delivers `value`; fails only if the receiver is gone.
            pub fn send(self, value: T) -> Result<(), T> {
                if Arc::strong_count(&self.shared) < 2 {
                    return Err(value);
                }
                self.shared.lock().expect("oneshot").value = Some(value);
                Ok(())
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                self.shared.lock().expect("oneshot").sender_alive = false;
            }
        }

        impl<T> Future for Receiver<T> {
            type Output = Result<T, RecvError>;
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
                let mut shared = self.shared.lock().expect("oneshot");
                if let Some(v) = shared.value.take() {
                    Poll::Ready(Ok(v))
                } else if !shared.sender_alive {
                    Poll::Ready(Err(RecvError(())))
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

/// Timers.
pub mod time {
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};
    use std::time::{Duration, Instant};

    /// Future that completes once its deadline passes.
    #[derive(Debug)]
    pub struct Sleep {
        deadline: Instant,
    }

    /// Sleeps for `duration` (poll-loop granularity, not high precision).
    pub fn sleep(duration: Duration) -> Sleep {
        Sleep {
            deadline: Instant::now() + duration,
        }
    }

    impl Future for Sleep {
        type Output = ();
        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
            if Instant::now() >= self.deadline {
                Poll::Ready(())
            } else {
                Poll::Pending
            }
        }
    }

    /// Error returned when a [`timeout`] expires.
    #[derive(Debug, PartialEq, Eq)]
    pub struct Elapsed(());

    impl std::fmt::Display for Elapsed {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("deadline has elapsed")
        }
    }

    impl std::error::Error for Elapsed {}

    /// Awaits `future`, abandoning it after `duration`.
    pub async fn timeout<F: Future>(duration: Duration, future: F) -> Result<F::Output, Elapsed> {
        let deadline = Instant::now() + duration;
        let mut future = std::pin::pin!(future);
        std::future::poll_fn(|cx| {
            if let Poll::Ready(v) = future.as_mut().poll(cx) {
                return Poll::Ready(Ok(v));
            }
            if Instant::now() >= deadline {
                return Poll::Ready(Err(Elapsed(())));
            }
            Poll::Pending
        })
        .await
    }
}

/// Two-branch `select!`: polls both branches in order, runs the body of
/// whichever completes first.
#[macro_export]
macro_rules! select {
    ($p1:pat = $e1:expr => $b1:expr, $p2:pat = $e2:expr => $b2:expr $(,)?) => {{
        enum __TokioSelect<A, B> {
            A(A),
            B(B),
        }
        let __outcome = {
            let mut __f1 = ::core::pin::pin!($e1);
            let mut __f2 = ::core::pin::pin!($e2);
            ::std::future::poll_fn(|__cx| {
                if let ::core::task::Poll::Ready(v) =
                    ::core::future::Future::poll(__f1.as_mut(), __cx)
                {
                    return ::core::task::Poll::Ready(__TokioSelect::A(v));
                }
                if let ::core::task::Poll::Ready(v) =
                    ::core::future::Future::poll(__f2.as_mut(), __cx)
                {
                    return ::core::task::Poll::Ready(__TokioSelect::B(v));
                }
                ::core::task::Poll::Pending
            })
            .await
        };
        match __outcome {
            __TokioSelect::A($p1) => $b1,
            __TokioSelect::B($p2) => $b2,
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::runtime::Runtime;

    #[test]
    fn block_on_plain_future() {
        let rt = Runtime::new().unwrap();
        assert_eq!(rt.block_on(async { 1 + 1 }), 2);
    }

    #[test]
    fn spawn_and_join() {
        let rt = Runtime::new().unwrap();
        let out = rt.block_on(async {
            let h = crate::spawn(async { 21 * 2 });
            h.await.unwrap()
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn oneshot_roundtrip() {
        let rt = Runtime::new().unwrap();
        let got = rt.block_on(async {
            let (tx, rx) = crate::sync::oneshot::channel();
            crate::spawn(async move {
                let _ = tx.send(7u32);
            });
            rx.await.unwrap()
        });
        assert_eq!(got, 7);
    }

    #[test]
    fn timeout_fires() {
        let rt = Runtime::new().unwrap();
        let out = rt.block_on(async {
            crate::time::timeout(
                std::time::Duration::from_millis(20),
                std::future::pending::<()>(),
            )
            .await
        });
        assert!(out.is_err());
    }

    #[test]
    fn select_picks_ready_branch() {
        let rt = Runtime::new().unwrap();
        let out = rt.block_on(async {
            let (_tx, mut rx) = crate::sync::oneshot::channel::<()>();
            let mut n = 0;
            loop {
                crate::select! {
                    _ = &mut rx => break,
                    v = std::future::ready(5) => { n += v; if n >= 10 { break; } },
                }
            }
            n
        });
        assert_eq!(out, 10);
    }

    #[test]
    fn tcp_loopback_echo() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::spawn(async move {
                let (mut conn, _) = listener.accept().await.unwrap();
                let mut buf = [0u8; 16];
                let n = conn.read(&mut buf).await.unwrap();
                conn.write_all(&buf[..n]).await.unwrap();
            });
            let mut client = crate::net::TcpStream::connect(addr).await.unwrap();
            client.write_all(b"ping").await.unwrap();
            client.shutdown_write().unwrap();
            let mut buf = [0u8; 16];
            let n = crate::time::timeout(std::time::Duration::from_secs(2), client.read(&mut buf))
                .await
                .unwrap()
                .unwrap();
            assert_eq!(&buf[..n], b"ping");
            server.await.unwrap();
        });
    }

    #[test]
    fn udp_loopback_echo() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let a = crate::net::UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let b = crate::net::UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let addr_b = b.local_addr().unwrap();
            a.send_to(b"hello", addr_b).await.unwrap();
            let mut buf = [0u8; 16];
            let (n, from) =
                crate::time::timeout(std::time::Duration::from_secs(2), b.recv_from(&mut buf))
                    .await
                    .unwrap()
                    .unwrap();
            assert_eq!(&buf[..n], b"hello");
            assert_eq!(from, a.local_addr().unwrap());
        });
    }
}
