//! Generator for the small regex subset used as string strategies:
//! character classes with ranges and `\xNN` escapes, literal characters,
//! `\`-escaped literals, and `{n}` / `{m,n}` quantifiers.

use crate::test_runner::TestRng;

#[derive(Debug)]
enum Atom {
    /// One choice among these characters.
    Class(Vec<char>),
    /// Exactly this character.
    Literal(char),
}

#[derive(Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Samples a string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = (piece.max - piece.min + 1) as u64;
        let count = piece.min + rng.below(span) as usize;
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(choices) => {
                    let idx = rng.below(choices.len() as u64) as usize;
                    out.push(choices[idx]);
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut pos = 0;
    while pos < chars.len() {
        let atom = match chars[pos] {
            '[' => {
                let (class, next) = parse_class(&chars, pos + 1, pattern);
                pos = next;
                Atom::Class(class)
            }
            '\\' => {
                let (c, next) = parse_escape(&chars, pos + 1, pattern);
                pos = next;
                Atom::Literal(c)
            }
            c => {
                pos += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, pos, pattern);
        pos = next;
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Parses the body of `[...]` starting just past `[`; returns the
/// expanded choice set and the position just past `]`.
fn parse_class(chars: &[char], mut pos: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut choices = Vec::new();
    while pos < chars.len() && chars[pos] != ']' {
        let lo = if chars[pos] == '\\' {
            let (c, next) = parse_escape(chars, pos + 1, pattern);
            pos = next;
            c
        } else {
            let c = chars[pos];
            pos += 1;
            c
        };
        // A `-` before a non-`]` char forms a range; a trailing `-` is
        // a literal.
        if pos + 1 < chars.len() && chars[pos] == '-' && chars[pos + 1] != ']' {
            pos += 1;
            let hi = if chars[pos] == '\\' {
                let (c, next) = parse_escape(chars, pos + 1, pattern);
                pos = next;
                c
            } else {
                let c = chars[pos];
                pos += 1;
                c
            };
            assert!(lo <= hi, "invalid class range in pattern {pattern:?}");
            for code in lo as u32..=hi as u32 {
                if let Some(c) = char::from_u32(code) {
                    choices.push(c);
                }
            }
        } else {
            choices.push(lo);
        }
    }
    assert!(
        pos < chars.len(),
        "unterminated character class in pattern {pattern:?}"
    );
    assert!(!choices.is_empty(), "empty character class in {pattern:?}");
    (choices, pos + 1)
}

/// Parses the char after a `\`; returns the literal and next position.
fn parse_escape(chars: &[char], pos: usize, pattern: &str) -> (char, usize) {
    match chars.get(pos) {
        Some('x') => {
            let hex: String = chars[pos + 1..pos + 3].iter().collect();
            let code = u32::from_str_radix(&hex, 16)
                .unwrap_or_else(|_| panic!("bad \\x escape in pattern {pattern:?}"));
            (
                char::from_u32(code).expect("valid \\x escape codepoint"),
                pos + 3,
            )
        }
        Some('n') => ('\n', pos + 1),
        Some('t') => ('\t', pos + 1),
        Some(&c) => (c, pos + 1),
        None => panic!("dangling escape in pattern {pattern:?}"),
    }
}

/// Parses `{n}` or `{m,n}` at `pos` if present; default is exactly one.
fn parse_quantifier(chars: &[char], pos: usize, pattern: &str) -> (usize, usize, usize) {
    if chars.get(pos) != Some(&'{') {
        return (1, 1, pos);
    }
    let close = chars[pos..]
        .iter()
        .position(|&c| c == '}')
        .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
        + pos;
    let body: String = chars[pos + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((lo, hi)) => (
            lo.parse().expect("quantifier lower bound"),
            hi.parse().expect("quantifier upper bound"),
        ),
        None => {
            let n: usize = body.parse().expect("quantifier count");
            (n, n)
        }
    };
    assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
    (min, max, close + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests")
    }

    #[test]
    fn fixed_width_class() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_from_pattern("[A-Z]{2}", &mut r);
            assert_eq!(s.len(), 2);
            assert!(s.chars().all(|c| c.is_ascii_uppercase()));
        }
    }

    #[test]
    fn literal_suffix_with_escaped_dot() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_from_pattern("[a-z]{1,12}\\.example", &mut r);
            let (label, suffix) = s.split_once('.').expect("dot present");
            assert_eq!(suffix, "example");
            assert!((1..=12).contains(&label.len()));
            assert!(label.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn hex_ranges_and_literals() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_from_pattern("[\\x20-\\x7e<>/\"'=!-]{0,300}", &mut r);
            assert!(s.len() <= 300);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
