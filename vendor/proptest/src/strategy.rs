//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A generator of test values. Unlike real proptest there is no value
/// tree and no shrinking: `generate` samples a final value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values where `f` returns `Some`, retrying otherwise.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Keeps only values passing `f`, retrying otherwise.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }
}

/// How many rejection retries before a filter gives up.
const MAX_REJECTS: u32 = 1000;

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The canonical strategy for `T` (`any::<u16>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

// ---- range strategies ------------------------------------------------

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

// ---- boxed strategies and unions (prop_oneof!) -----------------------

/// Object-safe view of a strategy, for heterogeneous unions.
pub trait DynStrategy {
    /// The produced value type.
    type Value;
    /// Samples one value through the trait object.
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed strategy, as produced by [`box_strategy`].
pub type BoxedStrategy<T> = Box<dyn DynStrategy<Value = T>>;

/// Boxes a strategy for use in a [`Union`].
pub fn box_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate_dyn(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate_dyn(rng)
    }
}

// ---- tuple strategies ------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

// ---- string strategies from regex-like literals ----------------------

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
