//! Minimal stand-in for `proptest`.
//!
//! Deterministic random generation without shrinking: the `proptest!`
//! macro runs each property for `ProptestConfig::cases` iterations with a
//! fixed-seed RNG, and `prop_assert*` macros are plain assertions. The
//! strategy combinators cover exactly the surface this workspace uses
//! (ranges, `any`, `Just`, `prop_oneof!`, tuples, collections, sample
//! select/Index, and a small regex subset for string strategies).

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything test files import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Plain assertion; proptest's would attach failure persistence.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Plain equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Plain inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::box_strategy($strategy)),+
        ])
    };
}

/// Property-test harness macro: runs each property `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)*
                $body
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
