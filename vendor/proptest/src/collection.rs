//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

/// Length specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo + 1) as u64;
        self.lo + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for vectors of values from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `proptest::collection::vec` — vectors with lengths in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap`s from key/value strategies.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

/// `proptest::collection::btree_map` — maps with up to `size` entries
/// (duplicate sampled keys collapse, as in real proptest's minimum-size
/// guarantees this stand-in does not enforce).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = self.size.sample(rng);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
