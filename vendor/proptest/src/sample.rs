//! Sampling strategies: `select` and `Index`.

use crate::strategy::{Arbitrary, Strategy};
use crate::test_runner::TestRng;

/// Strategy choosing uniformly from a fixed list.
pub struct Select<T> {
    options: Vec<T>,
}

/// `proptest::sample::select` — uniform choice from `options`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from empty list");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].clone()
    }
}

/// An index into a collection whose length is only known at use time.
#[derive(Debug, Clone, Copy)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Projects this sample onto a collection of length `len`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.raw % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index {
            raw: rng.next_u64(),
        }
    }
}
