//! Config and RNG for the property harness.

/// Subset of proptest's config: only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
    /// Accepted for struct-literal compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic xoshiro256++ generator, seeded from the property name so
/// distinct properties explore distinct input streams run after run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Builds the RNG for a named property.
    pub fn deterministic(name: &str) -> TestRng {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // SplitMix64 expansion of the name hash into full state.
        let mut seed = hash;
        let mut state = [0u64; 4];
        for slot in &mut state {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        TestRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [a, b, c, d] = self.state;
        let result = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
        let t = b << 17;
        let mut s = [a, b, c, d];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
