//! Minimal stand-in for `serde`.
//!
//! The real serde drives a visitor-based data model; this stand-in routes
//! everything through an owned [`Value`] tree instead, which is all the
//! workspace needs (JSON in/out plus `#[derive]`, `#[serde(skip)]` and
//! `#[serde(with = "...")]`). The trait *signatures* match upstream closely
//! enough that idiomatic call sites — generic `fn serialize<S: Serializer>`
//! adapters, `serde::Serialize::serialize(&x, ser)` UFCS calls — compile
//! unchanged.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

mod impls;

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// UTF-8 string.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// String-keyed map (sorted; deterministic output).
    Object(BTreeMap<String, Value>),
}

/// The error type shared by the in-tree serializers and deserializers.
#[derive(Debug, Clone)]
pub struct SerdeError(pub String);

impl fmt::Display for SerdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SerdeError {}

/// A type that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink that accepts one [`Value`] tree.
pub trait Serializer: Sized {
    /// Success type.
    type Ok;
    /// Error type.
    type Error: ser::Error;
    /// Consumes the serializer with a finished value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be reconstructed from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes an instance from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A source that yields one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
    /// Consumes the deserializer, producing its value tree.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// Serialization-side traits and helpers.
pub mod ser {
    use super::{SerdeError, Serialize, Serializer, Value};
    use std::fmt::Display;

    /// Error constructor required of every [`Serializer::Error`].
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    impl Error for SerdeError {
        fn custom<T: Display>(msg: T) -> Self {
            SerdeError(msg.to_string())
        }
    }

    /// A serializer that simply hands back the [`Value`] tree.
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = SerdeError;
        fn serialize_value(self, value: Value) -> Result<Value, SerdeError> {
            Ok(value)
        }
    }

    /// Serializes any value into an owned [`Value`] tree.
    pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, SerdeError> {
        value.serialize(ValueSerializer)
    }
}

/// Deserialization-side traits and helpers.
pub mod de {
    use super::{Deserialize, Deserializer, SerdeError, Value};
    use std::fmt::Display;

    /// Error constructor required of every [`Deserializer::Error`].
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    impl Error for SerdeError {
        fn custom<T: Display>(msg: T) -> Self {
            SerdeError(msg.to_string())
        }
    }

    /// A `Deserialize` bound free of the `'de` lifetime (owned data).
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

    /// A deserializer over an owned [`Value`] tree.
    pub struct ValueDeserializer {
        value: Value,
    }

    impl ValueDeserializer {
        /// Wraps a value tree.
        pub fn new(value: Value) -> Self {
            Self { value }
        }
    }

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = SerdeError;
        fn deserialize_value(self) -> Result<Value, SerdeError> {
            Ok(self.value)
        }
    }

    /// Reconstructs a value of type `T` from a [`Value`] tree.
    pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, SerdeError> {
        T::deserialize(ValueDeserializer::new(value))
    }
}

/// Support machinery for `serde_derive`-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    pub use super::de::{from_value, DeserializeOwned, ValueDeserializer};
    pub use super::ser::{to_value, ValueSerializer};
    use super::{SerdeError, Value};
    use std::collections::BTreeMap;

    /// The map type backing [`Value::Object`].
    pub type Map = BTreeMap<String, Value>;

    /// Extracts and deserializes a named struct field (missing → null).
    pub fn from_field<T: DeserializeOwned>(v: &Value, name: &str) -> Result<T, SerdeError> {
        from_value(take_field(v, name))
    }

    /// Clones a named field out of an object value (missing → null).
    pub fn take_field(v: &Value, name: &str) -> Value {
        match v {
            Value::Object(m) => m.get(name).cloned().unwrap_or(Value::Null),
            _ => Value::Null,
        }
    }

    /// Wraps a variant payload in its externally-tagged form.
    pub fn variant(name: &str, payload: Value) -> Value {
        let mut m = Map::new();
        m.insert(name.to_string(), payload);
        Value::Object(m)
    }

    /// Splits an externally-tagged enum value into `(tag, payload)`.
    pub fn variant_parts(v: Value) -> Result<(String, Value), SerdeError> {
        match v {
            Value::String(s) => Ok((s, Value::Null)),
            Value::Object(m) if m.len() == 1 => {
                let (k, p) = m.into_iter().next().expect("len checked");
                Ok((k, p))
            }
            other => Err(SerdeError(format!(
                "expected enum (string or single-key object), got {other:?}"
            ))),
        }
    }

    /// Converts a value into a fixed-arity sequence.
    pub fn into_seq(v: Value, n: usize) -> Result<Vec<Value>, SerdeError> {
        match v {
            Value::Array(a) if a.len() == n => Ok(a),
            Value::Array(a) => Err(SerdeError(format!(
                "expected sequence of length {n}, got {}",
                a.len()
            ))),
            other => Err(SerdeError(format!("expected sequence, got {other:?}"))),
        }
    }
}
