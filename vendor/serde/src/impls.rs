//! `Serialize`/`Deserialize` implementations for std types, all routed
//! through the [`Value`] tree.

use crate::de::{DeserializeOwned, Error as DeError};
use crate::ser::{to_value, Error as SerError};
use crate::{Deserialize, Deserializer, SerdeError, Serialize, Serializer, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;
use std::net::{Ipv4Addr, Ipv6Addr};

fn ser_err<S: Serializer>(e: SerdeError) -> S::Error {
    <S::Error as SerError>::custom(e)
}

fn de_err<'de, D: Deserializer<'de>>(e: SerdeError) -> D::Error {
    <D::Error as DeError>::custom(e)
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                let raw = value_to_u64(&v).map_err(de_err::<D>)?;
                <$t>::try_from(raw)
                    .map_err(|_| de_err::<D>(SerdeError(format!("{raw} out of range"))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::I64(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                let raw = value_to_i64(&v).map_err(de_err::<D>)?;
                <$t>::try_from(raw)
                    .map_err(|_| de_err::<D>(SerdeError(format!("{raw} out of range"))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

fn value_to_u64(v: &Value) -> Result<u64, SerdeError> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        // Stringified keys round-trip through JSON object keys.
        Value::String(s) => s
            .parse()
            .map_err(|_| SerdeError(format!("expected unsigned integer, got {s:?}"))),
        other => Err(SerdeError(format!(
            "expected unsigned integer, got {other:?}"
        ))),
    }
}

fn value_to_i64(v: &Value) -> Result<i64, SerdeError> {
    match v {
        Value::I64(n) => Ok(*n),
        Value::U64(n) => i64::try_from(*n).map_err(|_| SerdeError(format!("{n} out of range"))),
        Value::String(s) => s
            .parse()
            .map_err(|_| SerdeError(format!("expected integer, got {s:?}"))),
        other => Err(SerdeError(format!("expected integer, got {other:?}"))),
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::F64(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.deserialize_value()? {
                    Value::F64(f) => Ok(f as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    other => Err(de_err::<D>(SerdeError(format!(
                        "expected number, got {other:?}"
                    )))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

// ------------------------------------------------------------ scalar misc

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de_err::<D>(SerdeError(format!(
                "expected bool, got {other:?}"
            )))),
        }
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(de_err::<D>(SerdeError(format!(
                "expected single-char string, got {other:?}"
            )))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::String(s) => Ok(s),
            other => Err(de_err::<D>(SerdeError(format!(
                "expected string, got {other:?}"
            )))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

/// `&'static str` fields (e.g. const-table rows) round-trip by leaking
/// the decoded string; acceptable for config/report structs that are
/// deserialized a bounded number of times.
impl<'de> Deserialize<'de> for &'static str {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for Ipv4Addr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for Ipv4Addr {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        s.parse()
            .map_err(|_| de_err::<D>(SerdeError(format!("invalid IPv4 address {s:?}"))))
    }
}

impl Serialize for Ipv6Addr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for Ipv6Addr {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        s.parse()
            .map_err(|_| de_err::<D>(SerdeError(format!("invalid IPv6 address {s:?}"))))
    }
}

// ---------------------------------------------------------------- options

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => s.serialize_value(to_value(v).map_err(ser_err::<S>)?),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Null => Ok(None),
            v => crate::de::from_value(v).map(Some).map_err(de_err::<D>),
        }
    }
}

// -------------------------------------------------------------- sequences

fn seq_to_value<'a, T: Serialize + 'a>(
    items: impl Iterator<Item = &'a T>,
) -> Result<Value, SerdeError> {
    Ok(Value::Array(
        items.map(to_value).collect::<Result<Vec<_>, _>>()?,
    ))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(seq_to_value(self.iter()).map_err(ser_err::<S>)?)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(seq_to_value(self.iter()).map_err(ser_err::<S>)?)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(seq_to_value(self.iter()).map_err(ser_err::<S>)?)
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Array(a) => a
                .into_iter()
                .map(|v| crate::de::from_value(v))
                .collect::<Result<Vec<T>, _>>()
                .map_err(de_err::<D>),
            other => Err(de_err::<D>(SerdeError(format!(
                "expected sequence, got {other:?}"
            )))),
        }
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v: Vec<T> = Vec::deserialize(d)?;
        let n = v.len();
        v.try_into()
            .map_err(|_| de_err::<D>(SerdeError(format!("expected {N} elements, got {n}"))))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(seq_to_value(self.iter()).map_err(ser_err::<S>)?)
    }
}

impl<'de, T: DeserializeOwned + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Sort the serialized elements for deterministic output.
        let mut items = self
            .iter()
            .map(to_value)
            .collect::<Result<Vec<_>, _>>()
            .map_err(ser_err::<S>)?;
        items.sort_by(value_sort_key);
        s.serialize_value(Value::Array(items))
    }
}

impl<'de, T: DeserializeOwned + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_iter().collect())
    }
}

fn value_sort_key(a: &Value, b: &Value) -> std::cmp::Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::U64(_) | Value::F64(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (xa, ya) in x.iter().zip(y.iter()) {
                let o = value_sort_key(xa, ya);
                if o != Ordering::Equal {
                    return o;
                }
            }
            x.len().cmp(&y.len())
        }
        (x, y) if rank(x) == 2 && rank(y) == 2 => {
            let fx = match x {
                Value::I64(n) => *n as f64,
                Value::U64(n) => *n as f64,
                Value::F64(f) => *f,
                _ => unreachable!(),
            };
            let fy = match y {
                Value::I64(n) => *n as f64,
                Value::U64(n) => *n as f64,
                Value::F64(f) => *f,
                _ => unreachable!(),
            };
            fx.total_cmp(&fy)
        }
        (x, y) => rank(x).cmp(&rank(y)),
    }
}

// ------------------------------------------------------------------- maps

fn key_to_string(v: Value) -> Result<String, SerdeError> {
    match v {
        Value::String(s) => Ok(s),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(SerdeError(format!(
            "map key must serialize to a string-like value, got {other:?}"
        ))),
    }
}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Result<Value, SerdeError> {
    let mut m = BTreeMap::new();
    for (k, v) in entries {
        m.insert(key_to_string(to_value(k)?)?, to_value(v)?);
    }
    Ok(Value::Object(m))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(map_to_value(self.iter()).map_err(ser_err::<S>)?)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(map_to_value(self.iter()).map_err(ser_err::<S>)?)
    }
}

fn map_entries<T: DeserializeOwned>(v: Value) -> Result<Vec<(String, T)>, SerdeError> {
    match v {
        Value::Object(m) => m
            .into_iter()
            .map(|(k, v)| Ok((k, crate::de::from_value(v)?)))
            .collect(),
        other => Err(SerdeError(format!("expected map, got {other:?}"))),
    }
}

impl<'de, K: DeserializeOwned + Ord, V: DeserializeOwned> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        map_entries::<V>(d.deserialize_value()?)
            .and_then(|entries| {
                entries
                    .into_iter()
                    .map(|(k, v)| Ok((crate::de::from_value(Value::String(k))?, v)))
                    .collect()
            })
            .map_err(de_err::<D>)
    }
}

impl<'de, K: DeserializeOwned + Eq + Hash, V: DeserializeOwned> Deserialize<'de> for HashMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        map_entries::<V>(d.deserialize_value()?)
            .and_then(|entries| {
                entries
                    .into_iter()
                    .map(|(k, v)| Ok((crate::de::from_value(Value::String(k))?, v)))
                    .collect()
            })
            .map_err(de_err::<D>)
    }
}

// ----------------------------------------------------------------- tuples

macro_rules! impl_tuple {
    ($($name:ident $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(to_value(&self.$idx).map_err(ser_err::<S>)?),+];
                s.serialize_value(Value::Array(items))
            }
        }
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                const N: usize = [$($idx),+].len();
                let a = crate::__private::into_seq(d.deserialize_value()?, N)
                    .map_err(de_err::<D>)?;
                let mut it = a.into_iter();
                Ok(($({
                    let _ = $idx;
                    crate::de::from_value::<$name>(it.next().expect("length checked"))
                        .map_err(de_err::<D>)?
                },)+))
            }
        }
    };
}

impl_tuple!(T0 0);
impl_tuple!(T0 0, T1 1);
impl_tuple!(T0 0, T1 1, T2 2);
impl_tuple!(T0 0, T1 1, T2 2, T3 3);
impl_tuple!(T0 0, T1 1, T2 2, T3 3, T4 4);
impl_tuple!(T0 0, T1 1, T2 2, T3 3, T4 4, T5 5);
impl_tuple!(T0 0, T1 1, T2 2, T3 3, T4 4, T5 5, T6 6);
impl_tuple!(T0 0, T1 1, T2 2, T3 3, T4 4, T5 5, T6 6, T7 7);

// Value itself round-trips unchanged, so generated code and adapters can
// pass pre-built trees around.
impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.deserialize_value()
    }
}

#[cfg(test)]
mod tests {
    use crate::de::from_value;
    use crate::ser::to_value;
    use crate::Value;
    use std::collections::BTreeMap;
    use std::net::Ipv4Addr;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_value(&42u32).unwrap(), Value::U64(42));
        assert_eq!(from_value::<u32>(Value::U64(42)).unwrap(), 42);
        assert_eq!(from_value::<u8>(Value::U64(300)).ok(), None);
        let ip = Ipv4Addr::new(1, 2, 3, 4);
        assert_eq!(from_value::<Ipv4Addr>(to_value(&ip).unwrap()).unwrap(), ip);
    }

    #[test]
    fn map_with_ip_keys() {
        let mut m = BTreeMap::new();
        m.insert(Ipv4Addr::new(9, 9, 9, 9), 7u64);
        let v = to_value(&m).unwrap();
        let back: BTreeMap<Ipv4Addr, u64> = from_value(v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = ("a".to_string(), 1u64, 2i64, true);
        let back: (String, u64, i64, bool) = from_value(to_value(&t).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(to_value(&Option::<u32>::None).unwrap(), Value::Null);
        let some: Option<u32> = from_value(Value::U64(3)).unwrap();
        assert_eq!(some, Some(3));
        let none: Option<u32> = from_value(Value::Null).unwrap();
        assert_eq!(none, None);
    }
}
