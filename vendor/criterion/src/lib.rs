//! Minimal stand-in for `criterion`.
//!
//! Provides the harness surface the workspace benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! `black_box`, throughput annotations) with a simple wall-clock
//! measurement loop: warm-up, then `sample_size` timed samples, reporting
//! the median per-iteration time. No plots, no statistics machinery.

use std::time::{Duration, Instant};

/// Re-exported opaque value barrier.
pub use std::hint::black_box;

/// Throughput annotation; reported alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a parameter's `Display` form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Builds an id from a function name and parameter.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Runs the closure under measurement.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Times `routine`, recording `sample_size` samples after warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly a millisecond so Instant overhead is amortised.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Times `routine` on a fresh input from `setup` per sample; only
    /// the routine is timed. For routines that consume their input.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        // One warm-up pass, then single-shot samples (no calibration
        // loop: the input is consumed, so iterations can't be batched).
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  {:.1} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  {per_sec:.0} elem/s")
        }
        _ => String::new(),
    };
    println!("{label:<50} median {median:>12.2?}{rate}");
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; measurement happens eagerly.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
        });
        report(&self.name, name, &mut samples, self.throughput);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut samples = Vec::new();
        f(
            &mut Bencher {
                samples: &mut samples,
                sample_size: self.sample_size,
            },
            input,
        );
        report(&self.name, &id.id, &mut samples, self.throughput);
        self
    }

    /// Ends the group (no-op; results are printed eagerly).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_size: 20,
        });
        report("", name, &mut samples, None);
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
