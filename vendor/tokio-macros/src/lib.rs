//! Minimal stand-in for `tokio-macros`: `#[tokio::test]` and
//! `#[tokio::main]` over the in-tree single-threaded runtime. Supports
//! zero-argument async functions without return types — the only shape
//! this workspace uses.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct AsyncFn {
    attrs: String,
    name: String,
    ret: String,
    body: String,
}

fn parse_async_fn(item: TokenStream, macro_name: &str) -> AsyncFn {
    let toks: Vec<TokenTree> = item.into_iter().collect();
    let mut pos = 0;
    let mut attrs = String::new();
    // Pass through leading attributes (e.g. #[ignore]).
    while pos + 1 < toks.len() {
        match (&toks[pos], &toks[pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                attrs.push_str(&format!("#{g} "));
                pos += 2;
            }
            _ => break,
        }
    }
    // Skip visibility.
    if let Some(TokenTree::Ident(i)) = toks.get(pos) {
        if i.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(g)) = toks.get(pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    match toks.get(pos) {
        Some(TokenTree::Ident(i)) if i.to_string() == "async" => pos += 1,
        other => panic!("#[tokio::{macro_name}] requires an async fn, got {other:?}"),
    }
    match toks.get(pos) {
        Some(TokenTree::Ident(i)) if i.to_string() == "fn" => pos += 1,
        other => panic!("#[tokio::{macro_name}] requires an async fn, got {other:?}"),
    }
    let name = match toks.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected function name, got {other:?}"),
    };
    pos += 1;
    match toks.get(pos) {
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && g.stream().is_empty() => {}
        other => {
            panic!("#[tokio::{macro_name}] supports only zero-argument functions, got {other:?}")
        }
    }
    pos += 1;
    // Optional return type: collect everything between `->` and the body.
    let mut ret_toks: Vec<TokenTree> = Vec::new();
    if matches!(toks.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '-') {
        pos += 1; // '-'
        pos += 1; // '>'
        while let Some(tok) = toks.get(pos) {
            if let TokenTree::Group(g) = tok {
                if g.delimiter() == Delimiter::Brace {
                    break;
                }
            }
            ret_toks.push(tok.clone());
            pos += 1;
        }
    }
    // Round-trip through a TokenStream so `::` keeps its jointness.
    let ret = ret_toks.into_iter().collect::<TokenStream>().to_string();
    let body = match toks.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.to_string(),
        other => panic!("#[tokio::{macro_name}] expected a function body, got {other:?}"),
    };
    AsyncFn {
        attrs,
        name,
        ret,
        body,
    }
}

/// Runs an async test on a fresh runtime.
#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    let f = parse_async_fn(item, "test");
    let ret = if f.ret.is_empty() {
        String::new()
    } else {
        format!("-> {}", f.ret)
    };
    format!(
        "#[test]\n{attrs}\nfn {name}() {ret} {{\n\
           async fn __tokio_body() {ret} {body}\n\
           tokio::runtime::Runtime::new()\
             .expect(\"tokio runtime\")\
             .block_on(__tokio_body())\n\
         }}",
        attrs = f.attrs,
        name = f.name,
        body = f.body,
    )
    .parse()
    .expect("generated test fn parses")
}

/// Runs an async main on a fresh runtime.
#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    let f = parse_async_fn(item, "main");
    let ret = if f.ret.is_empty() {
        String::new()
    } else {
        format!("-> {}", f.ret)
    };
    format!(
        "{attrs}\nfn {name}() {ret} {{\n\
           async fn __tokio_body() {ret} {body}\n\
           tokio::runtime::Runtime::new()\
             .expect(\"tokio runtime\")\
             .block_on(__tokio_body())\n\
         }}",
        attrs = f.attrs,
        name = f.name,
        body = f.body,
    )
    .parse()
    .expect("generated main fn parses")
}
