//! Minimal stand-in for `parking_lot`: non-poisoning `Mutex` and `RwLock`
//! wrappers over the std primitives. Poisoning is swallowed (the inner
//! value is recovered), which matches parking_lot's panic-safe semantics
//! closely enough for this workspace.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
