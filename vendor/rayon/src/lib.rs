//! Minimal stand-in for `rayon`.
//!
//! Supports `(range).into_par_iter().map(f).collect::<Vec<_>>()` — the
//! only shape this workspace uses — by splitting the index range across
//! `std::thread::available_parallelism()` scoped threads and stitching
//! results back in order.

pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A data-parallel iterator over an indexable source.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Drains the iterator into an ordered `Vec`.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each element through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects into a container (only `Vec<Item>` is supported).
    fn collect<C>(self) -> C
    where
        C: FromParallel<Self::Item>,
    {
        C::from_ordered(self.drive())
    }
}

/// Collection target for [`ParallelIterator::collect`].
pub trait FromParallel<T> {
    /// Builds the container from an ordered vector of results.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    range: std::ops::Range<usize>,
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn drive(self) -> Vec<usize> {
        self.range.collect()
    }
}

/// The result of [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    B::Item: Send,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        let items = self.base.drive();
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        if threads <= 1 {
            return items.into_iter().map(self.f).collect();
        }
        let f = &self.f;
        let chunk = n.div_ceil(threads);
        let mut slots: Vec<Option<Vec<R>>> = Vec::new();
        slots.resize_with(threads, || None);
        let mut chunks: Vec<Vec<B::Item>> = Vec::with_capacity(threads);
        let mut items = items.into_iter();
        for _ in 0..threads {
            chunks.push(items.by_ref().take(chunk).collect());
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for part in chunks {
                handles.push(scope.spawn(move || part.into_iter().map(f).collect::<Vec<R>>()));
            }
            for (slot, handle) in slots.iter_mut().zip(handles) {
                *slot = Some(handle.join().expect("rayon worker panicked"));
            }
        });
        slots.into_iter().flatten().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn empty_range() {
        let out: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }
}
