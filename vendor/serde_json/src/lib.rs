//! Minimal stand-in for `serde_json`: JSON text in/out over the in-tree
//! `serde::Value` model. Output is deterministic (object keys sorted).

use serde::de::DeserializeOwned;
use serde::{SerdeError, Serialize};
use std::collections::BTreeMap;
use std::fmt;

pub use serde::Value;

/// Error raised by JSON serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<SerdeError> for Error {
    fn from(e: SerdeError) -> Self {
        Error(e.0)
    }
}

/// A string-keyed JSON object with sorted keys.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key/value pair, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }
}

impl Serialize for Map {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Object(self.entries.clone()))
    }
}

impl<'de> serde::Deserialize<'de> for Map {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Object(entries) => Ok(Map { entries }),
            other => Err(<D::Error as serde::de::Error>::custom(format!(
                "expected object, got {other:?}"
            ))),
        }
    }
}

/// Serializes a value into a `Value` tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(serde::ser::to_value(value)?)
}

/// Reconstructs a typed value from a `Value` tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    Ok(serde::de::from_value(value)?)
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON bytes into a typed value.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|_| Error("invalid utf-8".to_string()))?;
    from_str(text)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    from_value(v)
}

// ----------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&format_f64(*f));
            } else {
                // JSON has no inf/nan; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn format_f64(f: f64) -> String {
    let s = format!("{f}");
    // Keep floats recognizably float-typed across a round-trip.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("short \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1u64).unwrap(), "1");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
    }

    #[test]
    fn roundtrip_collections() {
        let mut m: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        m.insert("xs".into(), vec![1, 2, 3]);
        m.insert("ys".into(), vec![]);
        let text = to_string(&m).unwrap();
        assert_eq!(text, r#"{"xs":[1,2,3],"ys":[]}"#);
        let back: BTreeMap<String, Vec<u32>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_shape() {
        let mut map = Map::new();
        map.insert("k".into(), Value::U64(1));
        let text = to_string_pretty(&map).unwrap();
        assert_eq!(text, "{\n  \"k\": 1\n}");
    }

    #[test]
    fn parse_nested() {
        let v: Value = from_str(r#"{"a":[{"b":null},2.5,"s"],"c":false}"#).unwrap();
        match v {
            Value::Object(m) => {
                assert_eq!(m.len(), 2);
                assert!(matches!(m["c"], Value::Bool(false)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn unicode_strings() {
        let s = "résolveur — ドメイン";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
