//! Minimal stand-in for the `bytes` crate.
//!
//! Provides a cheaply clonable, immutable byte buffer backed by an
//! `Arc<[u8]>`. Only the surface this workspace actually uses is
//! implemented: construction from slices/vectors, `Deref` to `[u8]`,
//! equality, and ordering.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a static slice into a buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self { data: v.into() }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Self {
            data: v.as_slice().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self {
            data: v.as_bytes().into(),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_deref() {
        let b: Bytes = vec![1u8, 2, 3].into();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn from_slice_literal() {
        let b: Bytes = (&b"ping"[..]).into();
        assert_eq!(&b[..], b"ping");
        assert!(!b.is_empty());
        assert_eq!(b.len(), 4);
    }
}
