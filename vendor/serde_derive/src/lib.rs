//! Minimal stand-in for `serde_derive`, written directly against
//! `proc_macro` (no `syn`/`quote` available in this build environment).
//!
//! Supports the shapes this workspace uses: named structs, tuple/newtype
//! structs, unit structs, enums with unit/tuple/struct variants, plain
//! type parameters, and the field attributes `#[serde(skip)]` and
//! `#[serde(with = "path")]`. Generated code routes through
//! `serde::__private` value-tree helpers.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone, PartialEq)]
enum FieldAttr {
    Plain,
    Skip,
    With(String),
}

#[derive(Debug)]
struct Field {
    name: String,
    attr: FieldAttr,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------ parse

/// Extracts a `#[serde(...)]` field attribute from an attribute group, if
/// the group is one.
fn parse_serde_attr(group: &proc_macro::Group) -> Option<FieldAttr> {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return None,
    };
    let toks: Vec<TokenTree> = inner.stream().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(i)) if i.to_string() == "skip" => Some(FieldAttr::Skip),
        Some(TokenTree::Ident(i)) if i.to_string() == "with" => {
            let lit = toks.iter().find_map(|t| match t {
                TokenTree::Literal(l) => Some(l.to_string()),
                _ => None,
            });
            let path = lit
                .expect("#[serde(with = \"path\")] needs a string literal")
                .trim_matches('"')
                .to_string();
            Some(FieldAttr::With(path))
        }
        other => panic!("unsupported #[serde(...)] attribute: {other:?}"),
    }
}

/// Consumes leading attributes from a token cursor, returning any serde
/// field attribute found.
fn take_attrs(toks: &[TokenTree], pos: &mut usize) -> FieldAttr {
    let mut attr = FieldAttr::Plain;
    while *pos + 1 < toks.len() {
        match (&toks[*pos], &toks[*pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                if let Some(a) = parse_serde_attr(g) {
                    attr = a;
                }
                *pos += 2;
            }
            _ => break,
        }
    }
    attr
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(toks: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(i)) = toks.get(*pos) {
        if i.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Advances past a type (or expression) until a top-level comma, tracking
/// `<...>` nesting so generic arguments don't terminate early.
fn skip_until_comma(toks: &[TokenTree], pos: &mut usize) {
    let mut angle = 0i32;
    let mut prev_dash = false;
    while let Some(t) = toks.get(*pos) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' if prev_dash => {} // `->` in fn types
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        *pos += 1;
    }
}

/// Parses the fields of a brace-delimited (named) body.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < toks.len() {
        let attr = take_attrs(&toks, &mut pos);
        skip_vis(&toks, &mut pos);
        let name = match toks.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        pos += 1;
        match toks.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_until_comma(&toks, &mut pos);
        pos += 1; // consume the comma (or run off the end)
        fields.push(Field { name, attr });
    }
    fields
}

/// Counts the fields of a paren-delimited (tuple) body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < toks.len() {
        let attr = take_attrs(&toks, &mut pos);
        assert_eq!(
            attr,
            FieldAttr::Plain,
            "#[serde(...)] on tuple-struct fields is not supported"
        );
        skip_vis(&toks, &mut pos);
        if pos >= toks.len() {
            break;
        }
        count += 1;
        skip_until_comma(&toks, &mut pos);
        pos += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < toks.len() {
        let _ = take_attrs(&toks, &mut pos);
        let name = match toks.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        pos += 1;
        let shape = match toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                pos += 1;
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                pos += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        skip_until_comma(&toks, &mut pos);
        pos += 1;
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    // Skip outer attributes and visibility.
    loop {
        let before = pos;
        let _ = take_attrs(&toks, &mut pos);
        skip_vis(&toks, &mut pos);
        if pos == before {
            break;
        }
    }
    let is_enum = match toks.get(pos) {
        Some(TokenTree::Ident(i)) if i.to_string() == "struct" => false,
        Some(TokenTree::Ident(i)) if i.to_string() == "enum" => true,
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    pos += 1;
    let name = match toks.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    pos += 1;

    // Optional generic parameter list. Only plain, unbounded type
    // parameters are supported (all this workspace declares).
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = toks.get(pos) {
        if p.as_char() == '<' {
            pos += 1;
            let mut depth = 1i32;
            while depth > 0 {
                match toks.get(pos) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                        panic!("lifetime parameters are not supported by the in-tree serde_derive")
                    }
                    Some(TokenTree::Ident(i)) if depth == 1 => generics.push(i.to_string()),
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' && depth == 1 => {
                        panic!(
                            "bounded type parameters are not supported by the in-tree serde_derive"
                        )
                    }
                    Some(_) => {}
                    None => panic!("unterminated generic parameter list"),
                }
                pos += 1;
            }
        }
    }

    let kind = if is_enum {
        match toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, got {other:?}"),
        }
    } else {
        match toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("expected struct body, got {other:?}"),
        }
    };

    Input {
        name,
        generics,
        kind,
    }
}

// ---------------------------------------------------------------- codegen

const SER_ERR: &str = ".map_err(<__S::Error as serde::ser::Error>::custom)?";
const DE_ERR: &str = ".map_err(<__D::Error as serde::de::Error>::custom)?";

fn type_generics(input: &Input) -> String {
    if input.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", input.generics.join(", "))
    }
}

/// Builds the expression that serializes named fields into `__m`.
fn ser_named_fields(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        match &f.attr {
            FieldAttr::Skip => {}
            FieldAttr::Plain => out.push_str(&format!(
                "__m.insert(::std::string::String::from(\"{n}\"), \
                 serde::__private::to_value(&{a}){SER_ERR});\n",
                n = f.name,
                a = access(&f.name),
            )),
            FieldAttr::With(path) => out.push_str(&format!(
                "__m.insert(::std::string::String::from(\"{n}\"), \
                 {path}::serialize(&{a}, serde::__private::ValueSerializer){SER_ERR});\n",
                n = f.name,
                a = access(&f.name),
            )),
        }
    }
    out
}

/// Builds a struct literal body deserializing named fields from `__v`.
fn de_named_fields(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        match &f.attr {
            FieldAttr::Skip => out.push_str(&format!(
                "{n}: ::core::default::Default::default(),\n",
                n = f.name
            )),
            FieldAttr::Plain => out.push_str(&format!(
                "{n}: serde::__private::from_field(&__v, \"{n}\"){DE_ERR},\n",
                n = f.name
            )),
            FieldAttr::With(path) => out.push_str(&format!(
                "{n}: {path}::deserialize(serde::__private::ValueDeserializer::new(\
                 serde::__private::take_field(&__v, \"{n}\"))){DE_ERR},\n",
                n = f.name
            )),
        }
    }
    out
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let tg = type_generics(input);
    let ig = if input.generics.is_empty() {
        String::new()
    } else {
        format!(
            "<{}>",
            input
                .generics
                .iter()
                .map(|g| format!("{g}: serde::Serialize"))
                .collect::<Vec<_>>()
                .join(", ")
        )
    };

    let body = match &input.kind {
        Kind::UnitStruct => "__s.serialize_value(serde::Value::Null)".to_string(),
        Kind::NamedStruct(fields) => format!(
            "let mut __m = serde::__private::Map::new();\n{inserts}\
             __s.serialize_value(serde::Value::Object(__m))",
            inserts = ser_named_fields(fields, |n| format!("self.{n}")),
        ),
        Kind::TupleStruct(1) => {
            format!("__s.serialize_value(serde::__private::to_value(&self.0){SER_ERR})")
        }
        Kind::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("serde::__private::to_value(&self.{i}){SER_ERR}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("__s.serialize_value(serde::Value::Array(::std::vec![{items}]))")
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => serde::__private::variant(\"{vn}\", \
                         serde::__private::to_value(__f0){SER_ERR}),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds = (0..*n)
                            .map(|i| format!("__f{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = (0..*n)
                            .map(|i| format!("serde::__private::to_value(__f{i}){SER_ERR}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => serde::__private::variant(\"{vn}\", \
                             serde::Value::Array(::std::vec![{items}])),\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let inserts = ser_named_fields(fields, |n| n.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut __m = serde::__private::Map::new();\n{inserts}\
                             serde::__private::variant(\"{vn}\", serde::Value::Object(__m))\n}},\n"
                        ));
                    }
                }
            }
            format!("let __v = match self {{\n{arms}}};\n__s.serialize_value(__v)")
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{ig} serde::Serialize for {name}{tg} {{\n\
           fn serialize<__S: serde::Serializer>(&self, __s: __S) \
             -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
             {body}\n\
           }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let tg = type_generics(input);
    let ig = if input.generics.is_empty() {
        "<'de>".to_string()
    } else {
        format!(
            "<'de, {}>",
            input
                .generics
                .iter()
                .map(|g| format!("{g}: serde::de::DeserializeOwned"))
                .collect::<Vec<_>>()
                .join(", ")
        )
    };

    let body = match &input.kind {
        Kind::UnitStruct => {
            format!("let _ = __d.deserialize_value()?;\n::core::result::Result::Ok({name})")
        }
        Kind::NamedStruct(fields) => format!(
            "let __v: serde::Value = __d.deserialize_value()?;\n\
             ::core::result::Result::Ok({name} {{\n{fields}\n}})",
            fields = de_named_fields(fields),
        ),
        Kind::TupleStruct(1) => format!(
            "let __v = __d.deserialize_value()?;\n\
             ::core::result::Result::Ok({name}(serde::__private::from_value(__v){DE_ERR}))"
        ),
        Kind::TupleStruct(n) => {
            let items = (0..*n)
                .map(|_| {
                    format!(
                        "serde::__private::from_value(__it.next().expect(\"length checked\")){DE_ERR}"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let __v = __d.deserialize_value()?;\n\
                 let __a = serde::__private::into_seq(__v, {n}usize){DE_ERR};\n\
                 let mut __it = __a.into_iter();\n\
                 ::core::result::Result::Ok({name}({items}))"
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                         serde::__private::from_value(__payload){DE_ERR})),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let items = (0..*n)
                            .map(|_| {
                                format!(
                                    "serde::__private::from_value(\
                                     __it.next().expect(\"length checked\")){DE_ERR}"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __a = serde::__private::into_seq(__payload, {n}usize){DE_ERR};\n\
                             let mut __it = __a.into_iter();\n\
                             ::core::result::Result::Ok({name}::{vn}({items}))\n}},\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let mut body = String::new();
                        for f in fields {
                            match &f.attr {
                                FieldAttr::Skip => body.push_str(&format!(
                                    "{n}: ::core::default::Default::default(),\n",
                                    n = f.name
                                )),
                                FieldAttr::Plain => body.push_str(&format!(
                                    "{n}: serde::__private::from_field(&__payload, \"{n}\"){DE_ERR},\n",
                                    n = f.name
                                )),
                                FieldAttr::With(path) => body.push_str(&format!(
                                    "{n}: {path}::deserialize(\
                                     serde::__private::ValueDeserializer::new(\
                                     serde::__private::take_field(&__payload, \"{n}\"))){DE_ERR},\n",
                                    n = f.name
                                )),
                            }
                        }
                        arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn} {{\n{body}\n}}),\n"
                        ));
                    }
                }
            }
            format!(
                "let __v = __d.deserialize_value()?;\n\
                 let (__tag, __payload) = serde::__private::variant_parts(__v){DE_ERR};\n\
                 let _ = &__payload;\n\
                 match __tag.as_str() {{\n{arms}\
                 __other => ::core::result::Result::Err(\
                 <__D::Error as serde::de::Error>::custom(\
                 ::std::format!(\"unknown variant `{{}}`\", __other))),\n}}"
            )
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{ig} serde::Deserialize<'de> for {name}{tg} {{\n\
           fn deserialize<__D: serde::Deserializer<'de>>(__d: __D) \
             -> ::core::result::Result<Self, __D::Error> {{\n\
             {body}\n\
           }}\n\
         }}"
    )
}
