//! Minimal stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: `rngs::SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_range` (half-open and inclusive integer ranges) and `gen_bool`.
//! The generator is xoshiro256++-style and fully deterministic; it does
//! not promise value-compatibility with upstream `rand`, only stable
//! streams for a given seed.

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Types seedable from a `u64` (SplitMix64 expansion).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo` must hold.
    fn uniform_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// The successor value, saturating at the type maximum.
    fn saturating_succ(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn saturating_succ(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::uniform_below(self.start, self.end, rng)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::uniform_below(lo, hi.saturating_succ(), rng)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++ core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as upstream rand does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..26u8);
            assert!(w < 26);
            let x = rng.gen_range(1..=5);
            assert!((1..=5).contains(&x));
        }
    }

    #[test]
    fn floats_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean should be roughly 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
    }
}
